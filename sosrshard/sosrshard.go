// Package sosrshard partitions hosted datasets across multiple sosrd
// instances and fans one logical reconciliation out over all of them, with
// per-shard replica failover and hedged requests.
//
// The sets-of-sets protocols of the paper decompose a parent set into
// independent child-set reconciliations, which makes the workload
// embarrassingly partitionable: a deterministic shard map
// (internal/shardmap, rendezvous hashing) assigns every top-level element —
// or every child-set identity — to exactly one shard, both parties compute
// the assignment without communication, and each shard pair reconciles its
// slice with the paper's communication bounds intact per shard. Because a
// one-round reconcile costs O(d log d) bits — not O(n) — re-asking a second
// replica of a shard is nearly free, which is what makes replication,
// failover, and hedging cheap enough to be on by default.
//
// A deployment is described by a shardmap.Topology: k ≥ 1 replica addresses
// per shard, all hosting the identical slice, plus a monotonic epoch. The
// two halves:
//
//   - Coordinator hosts a logical dataset across every replica server of
//     every shard and routes live Update* mutations to all replicas of the
//     owning shard(s).
//   - Client fans a reconcile out as one concurrent session per shard.
//     Within a shard it tries replicas in rendezvous order (keyed on the
//     per-shard session seed, so steady-state load spreads): a dial or
//     connection failure fails over to the next replica after a short
//     backoff, and an optional hedge timer races a second replica against a
//     straggling first, taking whichever answers first. The per-shard
//     results merge into a single result with one itemized Stats report
//     (Σ shard protocol bytes + Σ shard framing == total TCP bytes of the
//     winning sessions, the same parity the unsharded wire protocol keeps).
//
// Every session carries its shard coordinates — canonical shard-identity
// hash, shard count, topology epoch, and the order-invariant topology
// fingerprint — in the hello. A server hosting a different slice rejects the
// handshake (ErrMisrouted), so a client configured with a wrong address list
// fails loudly instead of quietly reconciling the wrong slice; a server at a
// different epoch rejects with ErrStaleEpoch, and a Client with a Refresh
// hook re-resolves the topology and retries once, self-healing across
// rollouts.
package sosrshard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"sosr"
	"sosr/internal/hashing"
	"sosr/internal/obs"
	"sosr/internal/setutil"
	"sosr/internal/shardmap"
	"sosr/sosrnet"
)

// Topology describes a replicated sharded deployment; see shardmap.Topology.
type Topology = shardmap.Topology

// NewTopology builds a topology at the given epoch; shards[i] lists shard
// i's replica addresses. See shardmap.NewTopology.
func NewTopology(epoch uint64, shards [][]string) (*Topology, error) {
	return shardmap.NewTopology(epoch, shards)
}

// SingleReplica builds a one-replica-per-shard topology over addrs, the
// unreplicated layout earlier deployments configured as a flat address list.
func SingleReplica(epoch uint64, addrs []string) (*Topology, error) {
	return shardmap.SingleReplica(epoch, addrs)
}

// DefaultRetryBackoff is the pause before a failover attempt dials the next
// replica when Client.RetryBackoff is unset.
const DefaultRetryBackoff = 25 * time.Millisecond

// ShardStats itemizes one shard's share of a fanned-out reconciliation.
type ShardStats struct {
	// ID is the shard's canonical identity (its sorted replica address list).
	ID string
	// Index is the shard's position in the topology.
	Index int
	// Replica is the address of the replica that served the winning session.
	Replica string
	// Attempts counts the sessions opened against this shard's replicas:
	// 1 means the first replica answered; more mean failovers and/or a hedge.
	Attempts int
	// Net is the winning session's full accounting, protocol bytes and
	// framing overhead separated exactly as for an unsharded session. Losing
	// attempts (failed replicas, hedge losers) are not included.
	Net sosrnet.NetStats
}

// Stats aggregates a fanned-out reconciliation's communication: the sums
// across shards plus the per-shard itemization. The parity invariant of the
// unsharded wire protocol survives sharding: WireIn+WireOut ==
// Protocol.TotalBytes + Overhead, and each summand is itself the sum of the
// per-shard values (of the winning sessions; abandoned attempts are counted
// only in Failovers/Hedges).
type Stats struct {
	// Protocol sums the per-shard protocol stats — byte for byte what the
	// in-process simulations of the per-shard slices report.
	Protocol sosr.Stats
	// WireIn / WireOut are total connection bytes across all winning shard
	// sessions.
	WireIn, WireOut int64
	// Overhead is the summed framing + control-frame cost across shards.
	Overhead int64
	// Attempts sums protocol attempts (replication/doubling) across shards.
	Attempts int
	// Failovers counts replica attempts that failed with a connection-level
	// error and triggered (or exhausted into) another attempt.
	Failovers int
	// Hedges counts shards where the hedge timer fired and a second replica
	// was raced; HedgeWins counts those the hedged session won.
	Hedges, HedgeWins int
	// Shards itemizes every shard's winning session, in shard-index order.
	Shards []ShardStats
}

func (st *Stats) add(index int, id string, oc *shardOutcome) {
	ns := oc.ns
	st.Protocol.Rounds += ns.Protocol.Rounds
	st.Protocol.TotalBytes += ns.Protocol.TotalBytes
	st.Protocol.AliceBytes += ns.Protocol.AliceBytes
	st.Protocol.BobBytes += ns.Protocol.BobBytes
	st.Protocol.Messages += ns.Protocol.Messages
	st.WireIn += ns.WireIn
	st.WireOut += ns.WireOut
	st.Overhead += ns.Overhead
	st.Attempts += ns.Attempts
	st.Failovers += oc.failovers
	if oc.hedged {
		st.Hedges++
	}
	if oc.hedgeWin {
		st.HedgeWins++
	}
	st.Shards = append(st.Shards, ShardStats{
		ID: id, Index: index, Replica: oc.replica, Attempts: oc.attempts, Net: *ns,
	})
}

// Client reconciles local replicas against a sharded deployment: one
// concurrent fan-out session per shard, replicas tried in rendezvous order
// with failover and optional hedging, results merged. Configure the fields
// before the first reconcile. Methods are safe for concurrent use.
type Client struct {
	// Timeout bounds each per-replica session (dial through close).
	Timeout time.Duration
	// MaxFrame bounds accepted frame payloads per session.
	MaxFrame int
	// HedgeDelay, when positive and the shard has more than one replica,
	// races a second replica after the first has been in flight this long,
	// taking whichever session finishes first — the classic tail-latency
	// cut. The loser is cancelled and its bytes discarded. 0 disables
	// hedging.
	HedgeDelay time.Duration
	// RetryBackoff is the pause before a failover attempt dials the next
	// replica (0 = DefaultRetryBackoff). Only connection-level failures
	// (dial refused, reset, EOF mid-session) fail over; protocol and
	// server-reported errors fail fast — every replica hosts the identical
	// slice and would answer the same.
	RetryBackoff time.Duration
	// MaxAttempts bounds sessions per shard per reconcile, hedges included
	// (0 = max(2, replicas)).
	MaxAttempts int
	// PerShardDiff, when set, drops the caller's logical difference bound
	// from each shard session so every shard derives its own d̂ (the strata
	// estimator for sets/multisets, the child-difference probe or doubling
	// for sets-of-sets). A logical bound must cover the worst single shard —
	// all of d may land on one — so per-shard estimation sizes each sketch
	// to the shard's actual slice instead. Ignored for charpoly sessions,
	// which require an explicit bound.
	PerShardDiff bool
	// Refresh, when set, is called after a stale-epoch rejection to
	// re-resolve the topology (from whatever the deployment uses as its
	// source of truth); the reconcile then re-splits and retries once
	// against the new topology.
	Refresh func(ctx context.Context) (*Topology, error)
	// Obs, when set before the first reconcile, receives fan-out metrics:
	// per-shard session latency, straggler spread, fan-out outcomes,
	// failover and hedge counters (see metrics.go). Nil disables
	// instrumentation.
	Obs *obs.Registry
	// Trace, when set, samples one distributed trace per reconcile: a
	// "shard/reconcile" root, one "shard/fanout" child per shard, one
	// "shard/attempt" child per replica session (failovers and hedges
	// included), and — because the attempt span rides each session's hello —
	// the per-shard client and server stage spans under them. A span already
	// in the caller's context takes precedence over sampling.
	Trace *obs.Tracer
	// Logger, when set, receives fan-out event logs (replica failover, hedge
	// launches, topology refreshes), each line carrying the reconcile's
	// trace_id so logs correlate with /debug/traces. Nil discards them.
	Logger *slog.Logger

	obsOnce sync.Once
	met     *clientMetrics

	mu      sync.Mutex
	topo    *shardmap.Topology
	clients [][]*sosrnet.Client // [shard][replica], lazily built per topology
}

// Dial returns a client for the given topology. The topology must match the
// deployment's — every server verifies the canonical shard identity, epoch,
// and fingerprint against the session hello. No connection is made until a
// reconcile method runs.
func Dial(topo *Topology) (*Client, error) {
	if topo == nil {
		return nil, errors.New("sosrshard: nil topology")
	}
	return &Client{topo: topo}, nil
}

// Topology returns the client's current topology (shared; read-only).
func (c *Client) Topology() *Topology {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.topo
}

// SetTopology swaps the client's topology — the self-healing path after an
// epoch bump. In-flight fan-outs finish against the topology they started
// with; per-replica session clients (and their warm sketch caches) are
// rebuilt lazily.
func (c *Client) SetTopology(topo *Topology) error {
	if topo == nil {
		return errors.New("sosrshard: nil topology")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.topo = topo
	c.clients = nil
	return nil
}

// state is one fan-out's immutable view: the topology and its per-replica
// session clients. Clients persist across reconciles (until SetTopology), so
// each replica client's Bob-sketch cache stays warm.
type state struct {
	topo    *shardmap.Topology
	clients [][]*sosrnet.Client
}

func (c *Client) state() (*state, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.topo == nil {
		return nil, errors.New("sosrshard: client has no topology")
	}
	if c.clients == nil {
		topo := c.topo
		cls := make([][]*sosrnet.Client, topo.NumShards())
		for i := range cls {
			reps := topo.Replicas(i)
			cls[i] = make([]*sosrnet.Client, len(reps))
			for j, addr := range reps {
				cls[i][j] = &sosrnet.Client{
					Addr:             addr,
					Timeout:          c.Timeout,
					MaxFrame:         c.MaxFrame,
					ShardID:          topo.ShardIDHash(i),
					ShardCount:       topo.NumShards(),
					ShardEpoch:       topo.Epoch(),
					ShardFingerprint: topo.Fingerprint(),
				}
			}
		}
		c.clients = cls
	}
	return &state{topo: c.topo, clients: c.clients}, nil
}

var discardLogger = slog.New(slog.DiscardHandler)

func (c *Client) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return discardLogger
}

// startSpan opens one reconcile's root span — a child of the caller's
// context span when one is present, a sampled root from c.Trace otherwise —
// and is nil (free) when tracing is off.
func (c *Client) startSpan(ctx context.Context, name string, kind string) *obs.Span {
	sp := obs.SpanFromContext(ctx).Child("shard/reconcile")
	if sp == nil {
		sp = c.Trace.StartRoot("shard/reconcile")
	}
	sp.SetStr("dataset", name)
	sp.SetStr("kind", kind)
	return sp
}

// finishSpan closes a reconcile root with the merged accounting: the byte
// attributes come from the same Stats value the caller returns, so the trace
// root's wire bytes equal the reported itemized Stats exactly.
func (c *Client) finishSpan(sp *obs.Span, stats *Stats, err error) {
	if sp == nil {
		return
	}
	if stats != nil {
		sp.SetInt("proto_bytes", int64(stats.Protocol.TotalBytes))
		sp.SetInt("wire_in", stats.WireIn)
		sp.SetInt("wire_out", stats.WireOut)
		sp.SetInt("overhead", stats.Overhead)
		sp.SetInt("attempts", int64(stats.Attempts))
		sp.SetInt("failovers", int64(stats.Failovers))
		sp.SetInt("hedges", int64(stats.Hedges))
	}
	sp.Fail(err)
	sp.Finish()
}

// shardSeed derives the public-coin seed for one shard's session from the
// logical seed and the canonical shard identity, so distinct shards run
// independent hash families and reordered-but-identical topologies derive
// identical per-shard seeds. It doubles as the rendezvous key for replica
// ordering: distinct logical seeds spread shard primaries across replicas.
func (c *Client) shardSeed(topo *shardmap.Topology, seed uint64, index int) uint64 {
	return hashing.NewCoins(seed).Seed("shard/"+topo.ShardID(index), topo.NumShards())
}

// withRefresh runs one split-and-fan-out against the current topology; on a
// stale-epoch rejection with a Refresh hook configured it re-resolves the
// topology, swaps it in, and reruns once (the new topology may partition
// differently, so the rerun re-splits from scratch).
func withRefresh[R any](ctx context.Context, c *Client, run func(st *state) (R, *Stats, error)) (R, *Stats, error) {
	var zero R
	st, err := c.state()
	if err != nil {
		return zero, nil, err
	}
	res, stats, err := run(st)
	if err == nil || c.Refresh == nil || !errors.Is(err, sosrnet.ErrStaleEpoch) {
		return res, stats, err
	}
	if m := c.metrics(); m != nil {
		m.refreshes.Inc()
	}
	c.logger().Warn("stale topology epoch; refreshing and retrying",
		"epoch", st.topo.Epoch(), "err", err.Error(),
		"trace_id", obs.SpanFromContext(ctx).TraceID().String())
	topo, rerr := c.Refresh(ctx)
	if rerr != nil {
		return zero, nil, fmt.Errorf("sosrshard: topology refresh failed (%v) after: %w", rerr, err)
	}
	if serr := c.SetTopology(topo); serr != nil {
		return zero, nil, serr
	}
	if st, err = c.state(); err != nil {
		return zero, nil, err
	}
	return run(st)
}

// shardFn runs one shard's session against one replica's client, with the
// shard's derived session seed.
type shardFn func(ctx context.Context, shard int, cl *sosrnet.Client, seed uint64) (any, *sosrnet.NetStats, error)

// shardOutcome is one shard's winning session plus its attempt accounting.
type shardOutcome struct {
	res       any
	ns        *sosrnet.NetStats
	replica   string
	attempts  int
	failovers int
	hedged    bool
	hedgeWin  bool
}

// attemptResult carries one replica session's result into the engine.
type attemptResult struct {
	viaHedge bool
	replica  string
	res      any
	ns       *sosrnet.NetStats
	err      error
}

// retryable reports whether a shard session error is worth another replica:
// dial and connection-level IO failures are; protocol, validation, and
// server-reported errors are not — every replica hosts the identical slice
// and would answer the same.
func retryable(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, sosrnet.ErrServer):
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// runShard drives one shard's session to a winner: replicas in rendezvous
// order for this shard's key, failover with backoff on retryable errors, and
// an optional hedge racing a second replica against a straggling first. The
// first success cancels every other in-flight attempt (severing its
// connection); a non-retryable error fails the shard immediately.
func (c *Client) runShard(ctx context.Context, st *state, shard int, key uint64, fn func(ctx context.Context, cl *sosrnet.Client) (any, *sosrnet.NetStats, error)) (*shardOutcome, error) {
	order := st.topo.ReplicaOrder(shard, key)
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = max(2, len(order))
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	// The fan-out put this shard's span in ctx; every replica attempt —
	// first try, failover, hedge — becomes its own child, so a trace shows
	// exactly which replicas were asked and which one won.
	fsp := obs.SpanFromContext(ctx)
	tid := fsp.TraceID()
	// Buffered to maxAttempts: a cancelled loser's goroutine can always
	// deliver its result and exit, even after runShard has returned.
	results := make(chan attemptResult, maxAttempts)
	launched, pending := 0, 0
	launch := func(viaHedge bool) {
		cl := st.clients[shard][order[launched%len(order)]]
		launched++
		pending++
		attempt := launched
		go func() {
			asp := fsp.Child("shard/attempt")
			asp.SetStr("replica", cl.Addr)
			asp.SetInt("attempt", int64(attempt))
			asp.SetBool("hedge", viaHedge)
			res, ns, err := fn(obs.ContextWithSpan(actx, asp), cl)
			// A loser cancelled because another attempt won is an expected
			// outcome, not a failure worth flagging the whole trace for.
			if err != nil && actx.Err() != nil {
				asp.SetBool("cancelled", true)
			} else {
				asp.Fail(err)
			}
			asp.Finish()
			results <- attemptResult{viaHedge: viaHedge, replica: cl.Addr, res: res, ns: ns, err: err}
		}()
	}
	launch(false)
	m := c.metrics()
	out := &shardOutcome{}
	var hedgeCh <-chan time.Time
	if c.HedgeDelay > 0 && len(order) > 1 {
		ht := time.NewTimer(c.HedgeDelay)
		defer ht.Stop()
		hedgeCh = ht.C
	}
	var backoffT *time.Timer
	var backoffCh <-chan time.Time
	defer func() {
		if backoffT != nil {
			backoffT.Stop()
		}
	}()
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case r := <-results:
			pending--
			if r.err == nil {
				out.res, out.ns, out.replica = r.res, r.ns, r.replica
				out.attempts = launched
				out.hedgeWin = out.hedged && r.viaHedge
				if m != nil && out.hedged {
					if r.viaHedge {
						m.hedges.With("win").Inc()
					} else {
						m.hedges.With("loss").Inc()
					}
				}
				return out, nil
			}
			lastErr = r.err
			if !retryable(r.err) {
				return nil, r.err
			}
			out.failovers++
			if m != nil {
				m.failovers.With(strconv.Itoa(shard)).Inc()
			}
			c.logger().Warn("shard replica attempt failed; failing over",
				"shard", shard, "replica", r.replica, "attempts", launched,
				"err", r.err.Error(), "trace_id", tid.String())
			if launched < maxAttempts && backoffCh == nil {
				backoffT = time.NewTimer(backoff)
				backoffCh = backoffT.C
			}
			if pending == 0 && backoffCh == nil {
				return nil, fmt.Errorf("sosrshard: %d replica attempts failed: %w", launched, lastErr)
			}
		case <-backoffCh:
			backoffCh, backoffT = nil, nil
			if launched < maxAttempts {
				launch(false)
			}
		case <-hedgeCh:
			hedgeCh = nil
			if pending > 0 && launched < maxAttempts {
				out.hedged = true
				if m != nil {
					m.hedges.With("launched").Inc()
				}
				c.logger().Info("hedging straggling shard with a second replica",
					"shard", shard, "trace_id", tid.String())
				launch(true)
			}
		}
	}
}

// fanOut runs one session engine per shard concurrently and returns the
// per-shard winning outcomes, or the first shard error (annotated with the
// shard). With a registry configured it records every shard's wall-clock
// latency (failover and hedge waits included), the fan-out's straggler
// spread (slowest minus fastest — the wall-clock cost sharding adds over the
// slowest shard alone), and the fan-out outcome.
func (c *Client) fanOut(ctx context.Context, st *state, seed uint64, fn shardFn) ([]*shardOutcome, error) {
	m := c.metrics()
	n := st.topo.NumShards()
	outs := make([]*shardOutcome, n)
	errs := make([]error, n)
	durs := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			key := c.shardSeed(st.topo, seed, i)
			fsp := obs.SpanFromContext(ctx).Child("shard/fanout")
			fsp.SetInt("shard", int64(i))
			fsp.SetStr("shard_id", st.topo.ShardID(i))
			outs[i], errs[i] = c.runShard(obs.ContextWithSpan(ctx, fsp), st, i, key,
				func(actx context.Context, cl *sosrnet.Client) (any, *sosrnet.NetStats, error) {
					return fn(actx, i, cl, key)
				})
			fsp.Fail(errs[i])
			fsp.Finish()
			durs[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	if m != nil {
		fastest, slowest := durs[0], durs[0]
		for i, d := range durs {
			m.session.With(strconv.Itoa(i)).Observe(d.Seconds())
			if d < fastest {
				fastest = d
			}
			if d > slowest {
				slowest = d
			}
		}
		m.straggler.Observe((slowest - fastest).Seconds())
	}
	var firstErr error
	for i, err := range errs {
		if err != nil {
			firstErr = fmt.Errorf("sosrshard: shard %d (%s): %w", i, st.topo.ShardID(i), err)
			break
		}
	}
	if m != nil {
		status := "ok"
		if firstErr != nil {
			status = "error"
		}
		m.fanouts.With(status).Inc()
	}
	return outs, firstErr
}

// Sets reconciles a local set against the sharded hosted set `name`: the
// local set splits by element ownership, every shard session recovers its
// slice of the server-side set, and the merged result is exactly what an
// unsharded reconcile of the whole set would recover. cfg applies per shard
// (cfg.KnownDiff must bound the whole logical difference — any single shard
// may own all of it — unless PerShardDiff lets each shard estimate its own).
func (c *Client) Sets(ctx context.Context, name string, local []uint64, cfg sosr.SetConfig) (*sosr.SetResult, *Stats, error) {
	sp := c.startSpan(ctx, name, "set")
	ctx = obs.ContextWithSpan(ctx, sp)
	canon := setutil.Canonical(local)
	res, stats, err := withRefresh(ctx, c, func(st *state) (*sosr.SetResult, *Stats, error) {
		parts := st.topo.SplitElems(canon)
		outs, err := c.fanOut(ctx, st, cfg.Seed, func(actx context.Context, i int, cl *sosrnet.Client, seed uint64) (any, *sosrnet.NetStats, error) {
			sc := cfg
			sc.Seed = seed
			if c.PerShardDiff && !sc.UseCharPoly {
				sc.KnownDiff = 0
			}
			return unpack3(cl.Sets(actx, name, parts[i], sc))
		})
		if err != nil {
			return nil, nil, err
		}
		merged := &sosr.SetResult{}
		stats := &Stats{}
		for i, oc := range outs {
			res := oc.res.(*sosr.SetResult)
			merged.Recovered = append(merged.Recovered, res.Recovered...)
			merged.OnlyA = append(merged.OnlyA, res.OnlyA...)
			merged.OnlyB = append(merged.OnlyB, res.OnlyB...)
			stats.add(i, st.topo.ShardID(i), oc)
		}
		// Shards partition the element space, so the merged slices are
		// disjoint; sorting restores the canonical order an unsharded run
		// reports.
		sortWords(merged.Recovered)
		sortWords(merged.OnlyA)
		sortWords(merged.OnlyB)
		merged.Stats = stats.Protocol
		return merged, stats, nil
	})
	c.finishSpan(sp, stats, err)
	return res, stats, err
}

// Multiset reconciles a local multiset against the sharded hosted multiset
// `name`. Occurrences follow their element value to a shard (matching
// Coordinator.HostMultiset), so each shard reconciles a complete sub-
// multiset and the merged recovery is the whole logical multiset. diffBound
// bounds the packed-set difference per shard; pass the logical bound, or set
// PerShardDiff to let each shard estimate its own.
func (c *Client) Multiset(ctx context.Context, name string, local []uint64, diffBound int, seed uint64) ([]uint64, *Stats, error) {
	sp := c.startSpan(ctx, name, "multiset")
	ctx = obs.ContextWithSpan(ctx, sp)
	res, stats, err := withRefresh(ctx, c, func(st *state) ([]uint64, *Stats, error) {
		parts := st.topo.SplitElems(local)
		outs, err := c.fanOut(ctx, st, seed, func(actx context.Context, i int, cl *sosrnet.Client, sseed uint64) (any, *sosrnet.NetStats, error) {
			d := diffBound
			if c.PerShardDiff {
				d = 0
			}
			return unpack3(cl.Multiset(actx, name, parts[i], d, sseed))
		})
		if err != nil {
			return nil, nil, err
		}
		var merged []uint64
		stats := &Stats{}
		for i, oc := range outs {
			merged = append(merged, oc.res.([]uint64)...)
			stats.add(i, st.topo.ShardID(i), oc)
		}
		sortWords(merged)
		return merged, stats, nil
	})
	c.finishSpan(sp, stats, err)
	return res, stats, err
}

// SetsOfSets reconciles a local parent set against the sharded hosted
// sets-of-sets `name`: child sets split by identity ownership, every shard
// recovers its slice of the server-side parent, and the merged
// Recovered/Added/Removed (in canonical lexicographic child-set order) equal
// an unsharded reconcile of the whole parent. cfg applies per shard;
// cfg.KnownDiff must bound the whole logical difference, or set PerShardDiff
// to let each shard derive its own bound.
func (c *Client) SetsOfSets(ctx context.Context, name string, local [][]uint64, cfg sosr.Config) (*sosr.Result, *Stats, error) {
	sp := c.startSpan(ctx, name, "sos")
	ctx = obs.ContextWithSpan(ctx, sp)
	canon := make([][]uint64, len(local))
	for i, cs := range local {
		canon[i] = setutil.Canonical(cs)
	}
	res, stats, err := withRefresh(ctx, c, func(st *state) (*sosr.Result, *Stats, error) {
		parts := st.topo.SplitSets(canon)
		outs, err := c.fanOut(ctx, st, cfg.Seed, func(actx context.Context, i int, cl *sosrnet.Client, seed uint64) (any, *sosrnet.NetStats, error) {
			sc := cfg
			sc.Seed = seed
			if c.PerShardDiff {
				sc.KnownDiff = 0
			}
			return unpack3(cl.SetsOfSets(actx, name, parts[i], sc))
		})
		if err != nil {
			return nil, nil, err
		}
		merged := &sosr.Result{Protocol: outs[0].res.(*sosr.Result).Protocol}
		stats := &Stats{}
		for i, oc := range outs {
			res := oc.res.(*sosr.Result)
			merged.Recovered = append(merged.Recovered, res.Recovered...)
			merged.Added = append(merged.Added, res.Added...)
			merged.Removed = append(merged.Removed, res.Removed...)
			stats.add(i, st.topo.ShardID(i), oc)
		}
		setutil.SortSets(merged.Recovered)
		setutil.SortSets(merged.Added)
		setutil.SortSets(merged.Removed)
		merged.Stats = stats.Protocol
		merged.Attempts = stats.Attempts
		return merged, stats, nil
	})
	c.finishSpan(sp, stats, err)
	return res, stats, err
}

// unpack3 adapts a typed (result, stats, error) return to the engine's
// untyped attempt signature without a nil-interface pitfall on error.
func unpack3[R any](res R, ns *sosrnet.NetStats, err error) (any, *sosrnet.NetStats, error) {
	if err != nil {
		return nil, nil, err
	}
	return res, ns, nil
}

func sortWords(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
