package sosrshard

import (
	"strconv"

	"sosr/internal/obs"
)

// Client-side fan-out metrics. Instrumentation is opt-in: assign a registry
// to Client.Obs / Coordinator.Obs before first use and scrape it yourself
// (or merge it into a server registry — family registration is idempotent).
// With Obs nil nothing is registered or recorded.
//
//	sosr_shard_session_seconds{shard}   per-shard session latency in a fan-out
//	sosr_shard_straggler_seconds        spread (max-min) across one fan-out
//	sosr_shard_fanouts_total{status}    fanned-out reconciles (ok|error)
//	sosr_shard_failovers_total{shard}   replica attempts lost to conn errors
//	sosr_shard_hedges_total{outcome}    hedge races (launched|win|loss)
//	sosr_shard_refreshes_total          topology re-resolves after stale epoch
//	sosr_shard_updates_total{shard}     routed coordinator mutations per shard
type clientMetrics struct {
	session   *obs.HistogramVec
	straggler *obs.Histogram
	fanouts   *obs.CounterVec
	failovers *obs.CounterVec
	hedges    *obs.CounterVec
	refreshes *obs.Counter
}

func (c *Client) metrics() *clientMetrics {
	if c.Obs == nil {
		return nil
	}
	c.obsOnce.Do(func() {
		r := c.Obs
		c.met = &clientMetrics{
			session: r.Histogram("sosr_shard_session_seconds",
				"Per-shard session latency within a fanned-out reconcile.", nil, "shard"),
			straggler: r.Histogram("sosr_shard_straggler_seconds",
				"Latency spread (slowest minus fastest shard) per fan-out: the cost of waiting for stragglers.",
				nil).With(),
			fanouts: r.Counter("sosr_shard_fanouts_total",
				"Fanned-out reconciles by outcome.", "status"),
			failovers: r.Counter("sosr_shard_failovers_total",
				"Replica attempts that failed with a connection-level error and failed over.", "shard"),
			hedges: r.Counter("sosr_shard_hedges_total",
				"Hedged replica races by outcome: launched (timer fired, second replica raced), win (the hedge answered first), loss (the original did).", "outcome"),
			refreshes: r.Counter("sosr_shard_refreshes_total",
				"Topology re-resolves triggered by stale-epoch rejections.").With(),
		}
	})
	return c.met
}

// countUpdate records one routed mutation applied to shard i.
func (co *Coordinator) countUpdate(i int) {
	if co.Obs == nil {
		return
	}
	co.obsOnce.Do(func() {
		co.updates = co.Obs.Counter("sosr_shard_updates_total",
			"Coordinator mutations routed to each owning shard.", "shard")
	})
	co.updates.With(strconv.Itoa(i)).Inc()
}
