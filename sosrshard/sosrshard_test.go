package sosrshard

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sosr"
	"sosr/internal/obs"
	"sosr/internal/setutil"
	"sosr/internal/workload"
	"sosr/sosrnet"
)

// countHandler is a slog.Handler counting the server's "session finished"
// records, so tests know when the per-shard byte counters are final.
type countHandler struct {
	n *atomic.Int64
}

func (h countHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h countHandler) Handle(_ context.Context, r slog.Record) error {
	if r.Message == "session finished" {
		h.n.Add(1)
	}
	return nil
}
func (h countHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h countHandler) WithGroup(string) slog.Handler      { return h }

// countingListener / countingConn give the tests an independent measurement
// of the real TCP traffic per replica (the ground truth the aggregated Stats
// must reproduce), plus per-replica fault injection: an optional first-read
// stall (to make a replica a deterministic straggler for hedging tests).
type countingListener struct {
	net.Listener
	n         atomic.Int64
	stall     atomic.Int64 // nanoseconds to sleep before the first read
	killAfter atomic.Int64 // sever every conn once the byte counter crosses this
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: c, ln: l}, nil
}

type countingConn struct {
	net.Conn
	ln   *countingListener
	once sync.Once
}

func (c *countingConn) Read(p []byte) (int, error) {
	c.once.Do(func() {
		if d := c.ln.stall.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
	})
	n, err := c.Conn.Read(p)
	c.ln.n.Add(int64(n))
	c.maybeKill()
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.ln.n.Add(int64(n))
	c.maybeKill()
	return n, err
}

func (c *countingConn) maybeKill() {
	if ka := c.ln.killAfter.Load(); ka > 0 && c.ln.n.Load() >= ka {
		c.Conn.Close()
	}
}

// shardDeployment is a loopback replicated deployment: shards × replicas
// servers on counting listeners, a coordinator over them, and a fan-out
// client. The flat servers/counters views hold replica 0 of each shard (the
// whole deployment when replicas == 1), for the single-replica tests that
// predate replication.
type shardDeployment struct {
	topo     *Topology
	co       *Coordinator
	client   *Client
	servers  []*sosrnet.Server // replica 0 of each shard
	counters []*countingListener
	all      [][]*sosrnet.Server
	allLn    [][]*countingListener
	sessions atomic.Int64 // finished server-side sessions (log lines)
}

func startShards(t *testing.T, n int) *shardDeployment {
	return startReplicated(t, n, 1)
}

// startReplicated builds a shards × replicas loopback deployment at epoch 1.
func startReplicated(t *testing.T, shards, replicas int) *shardDeployment {
	t.Helper()
	d := &shardDeployment{}
	lists := make([][]string, shards)
	var serveWg sync.WaitGroup
	for i := 0; i < shards; i++ {
		var group []*sosrnet.Server
		var lns []*countingListener
		for j := 0; j < replicas; j++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			cl := &countingListener{Listener: ln}
			srv := sosrnet.NewServer()
			srv.Logger = slog.New(countHandler{n: &d.sessions})
			lists[i] = append(lists[i], ln.Addr().String())
			group = append(group, srv)
			lns = append(lns, cl)
			serveWg.Add(1)
			go func() { defer serveWg.Done(); srv.Serve(cl) }()
		}
		d.all = append(d.all, group)
		d.allLn = append(d.allLn, lns)
		d.servers = append(d.servers, group[0])
		d.counters = append(d.counters, lns[0])
	}
	topo, err := NewTopology(1, lists)
	if err != nil {
		t.Fatal(err)
	}
	co, err := NewCoordinator(topo, d.all)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(topo)
	if err != nil {
		t.Fatal(err)
	}
	client.Timeout = 60 * time.Second
	d.topo, d.co, d.client = topo, co, client
	t.Cleanup(func() {
		for _, group := range d.all {
			for _, srv := range group {
				srv.Close()
			}
		}
		serveWg.Wait()
	})
	return d
}

// topoAt rebuilds the deployment's topology at another epoch (same shards).
func (d *shardDeployment) topoAt(t *testing.T, epoch uint64) *Topology {
	t.Helper()
	lists := make([][]string, d.topo.NumShards())
	for i := range lists {
		lists[i] = d.topo.Replicas(i)
	}
	topo, err := NewTopology(epoch, lists)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// primary returns the replica index the client will try first for this shard
// under the given logical seed (the rendezvous order key is the derived
// per-shard session seed).
func (d *shardDeployment) primary(shard int, seed uint64) int {
	key := d.client.shardSeed(d.topo, seed, shard)
	return d.topo.ReplicaOrder(shard, key)[0]
}

// waitSessions blocks until the servers have finished (logged) total
// sessions, so the listener byte counters are final.
func (d *shardDeployment) waitSessions(t *testing.T, total int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for d.sessions.Load() < total {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d server sessions (have %d)", total, d.sessions.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkAggregateParity verifies the itemized byte report: per shard, the
// listener-measured TCP bytes equal that shard's protocol bytes plus its
// framing overhead; in aggregate, total TCP bytes equal the summed Stats
// plus summed framing. This is the acceptance invariant for sharding; it
// only holds when every shard's first replica won outright (no failovers or
// hedges — abandoned attempts move TCP bytes no winning session accounts).
func (d *shardDeployment) checkAggregateParity(t *testing.T, st *Stats) {
	t.Helper()
	if len(st.Shards) != len(d.counters) {
		t.Fatalf("itemized report covers %d shards, deployment has %d", len(st.Shards), len(d.counters))
	}
	var tcpTotal int64
	for i, sh := range st.Shards {
		var tcp int64
		for _, ln := range d.allLn[i] {
			tcp += ln.n.Load()
		}
		tcpTotal += tcp
		if want := int64(sh.Net.Protocol.TotalBytes) + sh.Net.Overhead; tcp != want {
			t.Fatalf("shard %d: TCP bytes %d != protocol %d + framing %d",
				i, tcp, sh.Net.Protocol.TotalBytes, sh.Net.Overhead)
		}
		if sh.Net.WireIn+sh.Net.WireOut != int64(sh.Net.Protocol.TotalBytes)+sh.Net.Overhead {
			t.Fatalf("shard %d: wire accounting inconsistent: %+v", i, sh.Net)
		}
	}
	if want := int64(st.Protocol.TotalBytes) + st.Overhead; tcpTotal != want {
		t.Fatalf("total TCP bytes %d != Σ shard protocol %d + Σ framing %d",
			tcpTotal, st.Protocol.TotalBytes, st.Overhead)
	}
	checkStatsParity(t, st)
}

// checkStatsParity checks the Stats-internal invariant alone (survives
// failovers and hedges, whose losing attempts are outside the winning
// sessions' accounting).
func checkStatsParity(t *testing.T, st *Stats) {
	t.Helper()
	if st.WireIn+st.WireOut != int64(st.Protocol.TotalBytes)+st.Overhead {
		t.Fatalf("aggregate wire accounting inconsistent: %+v", st)
	}
	var in, out, overhead int64
	var bytes int
	for _, sh := range st.Shards {
		in += sh.Net.WireIn
		out += sh.Net.WireOut
		overhead += sh.Net.Overhead
		bytes += sh.Net.Protocol.TotalBytes
	}
	if in != st.WireIn || out != st.WireOut || overhead != st.Overhead || bytes != st.Protocol.TotalBytes {
		t.Fatalf("itemized shards do not sum to the aggregate: %+v", st)
	}
}

// TestShardedSetsOfSetsMatchesSingleInstance is the acceptance test: a
// 3-shard loopback fan-out recovers the identical difference set as a
// single-instance reconcile of the same data, and the measured TCP bytes
// equal the sum of the per-shard Stats plus itemized framing overhead.
func TestShardedSetsOfSetsMatchesSingleInstance(t *testing.T) {
	ctx := context.Background()
	alice, bob := workload.PlantedSetsOfSets(17, 60, 8, 1<<32, 12)
	d := startShards(t, 3)
	if err := d.co.HostSetsOfSets("docs", alice); err != nil {
		t.Fatal(err)
	}
	cfg := sosr.Config{Seed: 77, Protocol: sosr.ProtocolCascade, KnownDiff: 24}
	want, err := sosr.ReconcileSetsOfSets(alice, bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := d.client.SetsOfSets(ctx, "docs", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !setutil.EqualSetOfSets(got.Recovered, want.Recovered) {
		t.Fatal("sharded fan-out recovered a different parent set than the single-instance run")
	}
	wantAdded, wantRemoved := setutil.CloneSets(want.Added), setutil.CloneSets(want.Removed)
	setutil.SortSets(wantAdded)
	setutil.SortSets(wantRemoved)
	if !reflect.DeepEqual(got.Added, wantAdded) || !reflect.DeepEqual(got.Removed, wantRemoved) {
		t.Fatalf("sharded difference set diverges:\n  added   %v vs %v\n  removed %v vs %v",
			got.Added, wantAdded, got.Removed, wantRemoved)
	}
	// Every shard actually participated (the planted instance is large
	// enough that rendezvous hashing spreads children over all three).
	for i, sh := range st.Shards {
		if sh.Net.Protocol.TotalBytes == 0 {
			t.Fatalf("shard %d moved no protocol bytes", i)
		}
	}
	d.waitSessions(t, 3)
	d.checkAggregateParity(t, st)
}

// TestShardedSetsMatchesSingleInstance: same acceptance shape for plain sets.
func TestShardedSetsMatchesSingleInstance(t *testing.T) {
	ctx := context.Background()
	alice := make([]uint64, 0, 800)
	for x := uint64(100); x < 900; x++ {
		alice = append(alice, x)
	}
	bob := append(append([]uint64{}, alice[5:]...), 10_000, 10_001, 10_002, 10_003, 10_004)
	d := startShards(t, 3)
	if err := d.co.HostSets("ids", alice); err != nil {
		t.Fatal(err)
	}
	cfg := sosr.SetConfig{Seed: 7, KnownDiff: 16}
	want, err := sosr.ReconcileSets(alice, bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := d.client.Sets(ctx, "ids", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Recovered, setutil.Canonical(alice)) {
		t.Fatal("sharded fan-out did not recover the full logical set")
	}
	if !reflect.DeepEqual(got.OnlyA, want.OnlyA) || !reflect.DeepEqual(got.OnlyB, want.OnlyB) {
		t.Fatal("sharded difference set diverges from the single-instance run")
	}
	d.waitSessions(t, 3)
	d.checkAggregateParity(t, st)
}

// TestShardedMultisetMatchesSingleInstance: multiset fan-out merges to the
// same recovery as the unsharded reconcile.
func TestShardedMultisetMatchesSingleInstance(t *testing.T) {
	ctx := context.Background()
	alice := []uint64{1, 1, 1, 2, 5, 5, 9, 9, 9, 9, 40, 41, 41, 77, 78, 79, 80, 80}
	bob := []uint64{1, 1, 2, 2, 5, 9, 9, 9, 9, 40, 41, 42, 77, 78, 79, 80}
	d := startShards(t, 3)
	if err := d.co.HostMultiset("bag", alice); err != nil {
		t.Fatal(err)
	}
	wantRec, _, err := sosr.ReconcileMultisets(alice, bob, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := d.client.Multiset(ctx, "bag", bob, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantRec) {
		t.Fatalf("sharded multiset recovered %v, want %v", got, wantRec)
	}
	d.waitSessions(t, 3)
	d.checkAggregateParity(t, st)
}

// TestPerShardDiffEstimation: with PerShardDiff set, the caller's logical
// difference bound is dropped per shard and every shard estimates its own d̂
// against its actual slice — the merged recovery is still exact.
func TestPerShardDiffEstimation(t *testing.T) {
	ctx := context.Background()
	alice := make([]uint64, 0, 3000)
	for x := uint64(1000); x < 4000; x++ {
		alice = append(alice, x)
	}
	bob := append(append([]uint64{}, alice[30:]...), 90_001, 90_002, 90_003)
	d := startShards(t, 3)
	if err := d.co.HostSets("ids", alice); err != nil {
		t.Fatal(err)
	}
	d.client.PerShardDiff = true
	// The logical bound passed here is deliberately absurd: with PerShardDiff
	// it must be ignored in favor of each shard's own estimate.
	got, st, err := d.client.Sets(ctx, "ids", bob, sosr.SetConfig{Seed: 19, KnownDiff: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Recovered, setutil.Canonical(alice)) {
		t.Fatal("per-shard estimation did not recover the full logical set")
	}
	checkStatsParity(t, st)
	// The unknown-d protocol runs the strata estimator per shard, so every
	// shard reports at least one attempt.
	for i, sh := range st.Shards {
		if sh.Net.Attempts < 1 {
			t.Fatalf("shard %d reports no attempts", i)
		}
	}
}

// TestCoordinatorUpdatesVisibleToFanOut: a logical mutation routed by the
// coordinator is what the next fan-out reconcile sees — identical to a
// single-instance run over the updated logical dataset.
func TestCoordinatorUpdatesVisibleToFanOut(t *testing.T) {
	ctx := context.Background()
	alice, bob := workload.PlantedSetsOfSets(23, 40, 8, 1<<32, 10)
	d := startShards(t, 3)
	if err := d.co.HostSetsOfSets("docs", alice); err != nil {
		t.Fatal(err)
	}
	added := []uint64{90_000_001, 90_000_005}
	removed := alice[7]
	if err := d.co.UpdateSetsOfSets("docs", [][]uint64{added}, [][]uint64{removed}); err != nil {
		t.Fatal(err)
	}
	updated := make([][]uint64, 0, len(alice))
	for i, cs := range alice {
		if i != 7 {
			updated = append(updated, cs)
		}
	}
	updated = append(updated, setutil.Canonical(added))
	cfg := sosr.Config{Seed: 5, Protocol: sosr.ProtocolCascade, KnownDiff: 24}
	want, err := sosr.ReconcileSetsOfSets(updated, bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := d.client.SetsOfSets(ctx, "docs", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !setutil.EqualSetOfSets(got.Recovered, want.Recovered) {
		t.Fatal("fan-out after coordinator update diverges from single-instance run over updated data")
	}
	// Only the shards owning a touched child were bumped.
	bumped := map[int]bool{
		d.topo.OwnerOfSet(setutil.Canonical(added)): true,
		d.topo.OwnerOfSet(removed):                  true,
	}
	for i, srv := range d.servers {
		v, err := srv.DatasetVersion("docs")
		if err != nil {
			t.Fatal(err)
		}
		if bumped[i] && v == 0 {
			t.Fatalf("owning shard %d was not updated", i)
		}
		if !bumped[i] && v != 0 {
			t.Fatalf("non-owning shard %d version bumped to %d", i, v)
		}
	}
}

// TestReplicatedCoordinatorKeepsReplicasIdentical: hosting and updates apply
// to every replica of the owning shard, so any replica can serve the shard's
// slice interchangeably.
func TestReplicatedCoordinatorKeepsReplicasIdentical(t *testing.T) {
	ctx := context.Background()
	alice := make([]uint64, 0, 600)
	for x := uint64(500); x < 1100; x++ {
		alice = append(alice, x)
	}
	bob := append(append([]uint64{}, alice[4:]...), 70_001, 70_002)
	d := startReplicated(t, 2, 2)
	if err := d.co.HostSets("ids", alice); err != nil {
		t.Fatal(err)
	}
	if err := d.co.UpdateSets("ids", []uint64{80_001, 80_002, 80_003}, []uint64{alice[0]}); err != nil {
		t.Fatal(err)
	}
	logical := setutil.ApplyDiff(alice, []uint64{80_001, 80_002, 80_003}, []uint64{alice[0]})
	// Every replica of every shard serves the identical updated slice: run
	// one fan-out pinned to each replica column via MaxAttempts=1 after
	// forcing the rendezvous choice with different seeds until both columns
	// have served, then simply reconcile twice and compare winners' results.
	want := setutil.Canonical(logical)
	for seed := uint64(0); seed < 4; seed++ {
		got, st, err := d.client.Sets(ctx, "ids", bob, sosr.SetConfig{Seed: seed, KnownDiff: 16})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Recovered, want) {
			t.Fatalf("seed %d: replicas disagree on the updated slice", seed)
		}
		if st.Failovers != 0 || st.Hedges != 0 {
			t.Fatalf("seed %d: unexpected failovers/hedges in a healthy deployment: %+v", seed, st)
		}
		checkStatsParity(t, st)
	}
	// Distinct seeds spread primaries: across the seeds above, both replica
	// columns of at least one shard should have served traffic.
	spread := false
	for i := range d.allLn {
		if d.allLn[i][0].n.Load() > 0 && d.allLn[i][1].n.Load() > 0 {
			spread = true
		}
	}
	if !spread {
		t.Log("note: rendezvous primaries did not spread across replicas for these seeds")
	}
}

// TestFailoverRecoversExactDifference is the chaos acceptance test: with one
// replica of each shard dead — including the would-be primary of at least
// one shard — the fan-out fails over and still recovers the exact difference
// set, with internally consistent aggregated Stats and a nonzero failover
// count.
func TestFailoverRecoversExactDifference(t *testing.T) {
	ctx := context.Background()
	alice, bob := workload.PlantedSetsOfSets(37, 60, 8, 1<<32, 12)
	d := startReplicated(t, 3, 2)
	if err := d.co.HostSetsOfSets("docs", alice); err != nil {
		t.Fatal(err)
	}
	cfg := sosr.Config{Seed: 11, Protocol: sosr.ProtocolCascade, KnownDiff: 24}
	want, err := sosr.ReconcileSetsOfSets(alice, bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Kill each shard's rendezvous primary for this seed: every shard must
	// fail over to its surviving replica.
	for i := range d.all {
		p := d.primary(i, cfg.Seed)
		d.all[i][p].Close()
		d.allLn[i][p].Close()
	}
	d.client.RetryBackoff = time.Millisecond
	got, st, err := d.client.SetsOfSets(ctx, "docs", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !setutil.EqualSetOfSets(got.Recovered, want.Recovered) {
		t.Fatal("fan-out with dead primaries recovered a different parent set")
	}
	wantAdded, wantRemoved := setutil.CloneSets(want.Added), setutil.CloneSets(want.Removed)
	setutil.SortSets(wantAdded)
	setutil.SortSets(wantRemoved)
	if !reflect.DeepEqual(got.Added, wantAdded) || !reflect.DeepEqual(got.Removed, wantRemoved) {
		t.Fatal("difference set diverges after failover")
	}
	if st.Failovers < len(d.all) {
		t.Fatalf("expected at least %d failovers, got %d", len(d.all), st.Failovers)
	}
	for i, sh := range st.Shards {
		dead := d.topo.Replicas(i)[d.primary(i, cfg.Seed)]
		if sh.Replica == dead {
			t.Fatalf("shard %d reports the dead replica %s as its winner", i, dead)
		}
		if sh.Attempts < 2 {
			t.Fatalf("shard %d: %d attempts despite a dead primary", i, sh.Attempts)
		}
	}
	checkStatsParity(t, st)
}

// TestFailoverMidSession: a replica that dies after the session is already
// in flight (conn severed mid-protocol) is retried on the next replica and
// the reconcile still completes exactly.
func TestFailoverMidSession(t *testing.T) {
	ctx := context.Background()
	alice := make([]uint64, 0, 500)
	for x := uint64(100); x < 600; x++ {
		alice = append(alice, x)
	}
	bob := append(append([]uint64{}, alice[3:]...), 40_001, 40_002)
	d := startReplicated(t, 1, 2)
	if err := d.co.HostSets("ids", alice); err != nil {
		t.Fatal(err)
	}
	cfg := sosr.SetConfig{Seed: 3, KnownDiff: 8}
	// Sever the primary's connections mid-session: the replica dies under
	// the client after the handshake bytes are already in flight, so the
	// failure is an IO error on an established session, not a refused dial.
	p := d.primary(0, cfg.Seed)
	d.allLn[0][p].killAfter.Store(1)
	d.client.RetryBackoff = time.Millisecond
	got, st, err := d.client.Sets(ctx, "ids", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Recovered, setutil.Canonical(alice)) {
		t.Fatal("failover reconcile did not recover the hosted set")
	}
	if st.Failovers == 0 {
		t.Fatal("no failover recorded despite a dead primary")
	}
	checkStatsParity(t, st)
}

// TestHedgedRequestBeatsStalledPrimary is the tail-latency acceptance test: a
// deliberately stalled primary loses the race to a hedged second replica, the
// client takes the hedge's answer, and the win is visible both in Stats and
// in the scraped Prometheus metrics.
func TestHedgedRequestBeatsStalledPrimary(t *testing.T) {
	ctx := context.Background()
	alice := make([]uint64, 0, 400)
	for x := uint64(2000); x < 2400; x++ {
		alice = append(alice, x)
	}
	bob := append(append([]uint64{}, alice[2:]...), 60_001)
	d := startReplicated(t, 1, 2)
	if err := d.co.HostSets("ids", alice); err != nil {
		t.Fatal(err)
	}
	cfg := sosr.SetConfig{Seed: 9, KnownDiff: 8}
	// Stall the rendezvous primary long enough that the hedge must win.
	p := d.primary(0, cfg.Seed)
	d.allLn[0][p].stall.Store(int64(2 * time.Second))
	d.client.HedgeDelay = 20 * time.Millisecond
	reg := obs.NewRegistry()
	d.client.Obs = reg

	got, st, err := d.client.Sets(ctx, "ids", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Recovered, setutil.Canonical(alice)) {
		t.Fatal("hedged reconcile did not recover the hosted set")
	}
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d hedgeWins=%d, want 1/1 (stalled primary must lose)", st.Hedges, st.HedgeWins)
	}
	if winner := st.Shards[0].Replica; winner == d.topo.Replicas(0)[p] {
		t.Fatalf("stalled primary %s reported as the winner", winner)
	}
	checkStatsParity(t, st)

	// The win is exported: scrape the client registry over HTTP exactly as a
	// deployment would.
	ops := httptest.NewServer(reg.Handler())
	defer ops.Close()
	samples := scrape(t, ops.URL)
	if v := samples[`sosr_shard_hedges_total{outcome="launched"}`]; v != 1 {
		t.Fatalf("hedges launched counter %v, want 1", v)
	}
	if v := samples[`sosr_shard_hedges_total{outcome="win"}`]; v < 1 {
		t.Fatalf("hedge-win counter %v, want >= 1", v)
	}
}

// TestStaleEpochRefresh: a client holding yesterday's topology is rejected
// with ErrStaleEpoch; with a Refresh hook it re-resolves, re-splits, and the
// reconcile succeeds against the new epoch transparently.
func TestStaleEpochRefresh(t *testing.T) {
	ctx := context.Background()
	alice := make([]uint64, 0, 300)
	for x := uint64(300); x < 600; x++ {
		alice = append(alice, x)
	}
	bob := append(append([]uint64{}, alice[2:]...), 50_001)
	d := startShards(t, 2)
	// Re-host everything at epoch 2: the deployment moved on while the
	// client still holds the epoch-1 topology it dialed with.
	topo2 := d.topoAt(t, 2)
	co2, err := NewCoordinator(topo2, d.all)
	if err != nil {
		t.Fatal(err)
	}
	if err := co2.HostSets("ids", alice); err != nil {
		t.Fatal(err)
	}
	cfg := sosr.SetConfig{Seed: 21, KnownDiff: 8}

	// Without a Refresh hook: the stale client is told exactly why.
	if _, _, err := d.client.Sets(ctx, "ids", bob, cfg); !errors.Is(err, sosrnet.ErrStaleEpoch) {
		t.Fatalf("stale client not rejected with ErrStaleEpoch: %v", err)
	}

	// With a Refresh hook: one transparent re-resolve and the reconcile
	// lands on the new epoch.
	var refreshed atomic.Int64
	reg := obs.NewRegistry()
	d.client.Obs = reg
	d.client.Refresh = func(ctx context.Context) (*Topology, error) {
		refreshed.Add(1)
		return topo2, nil
	}
	got, st, err := d.client.Sets(ctx, "ids", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Recovered, setutil.Canonical(alice)) {
		t.Fatal("post-refresh reconcile did not recover the hosted set")
	}
	if refreshed.Load() != 1 {
		t.Fatalf("Refresh called %d times, want 1", refreshed.Load())
	}
	if d.client.Topology().Epoch() != 2 {
		t.Fatalf("client topology epoch %d after refresh, want 2", d.client.Topology().Epoch())
	}
	checkStatsParity(t, st)
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sosr_shard_refreshes_total 1") {
		t.Fatalf("refresh counter missing:\n%s", sb.String())
	}
	// The next reconcile uses the refreshed topology without another call.
	if _, _, err := d.client.Sets(ctx, "ids", bob, cfg); err != nil {
		t.Fatalf("reconcile after refresh: %v", err)
	}
	if refreshed.Load() != 1 {
		t.Fatalf("Refresh re-called on a fresh topology (%d calls)", refreshed.Load())
	}
}

// TestReorderedTopologyAccepted: the same deployment spelled in a different
// shard order is the same topology — canonical identities and fingerprints
// make the handshake and the partition order-insensitive, so a reordered
// client reconciles successfully (the old world rejected this; the redesign
// makes spelling irrelevant).
func TestReorderedTopologyAccepted(t *testing.T) {
	ctx := context.Background()
	alice, bob := workload.PlantedSetsOfSets(29, 30, 6, 1<<32, 8)
	d := startShards(t, 3)
	if err := d.co.HostSetsOfSets("docs", alice); err != nil {
		t.Fatal(err)
	}
	cfg := sosr.Config{Seed: 1, Protocol: sosr.ProtocolCascade, KnownDiff: 24}
	want, _, err := d.client.SetsOfSets(ctx, "docs", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lists := [][]string{d.topo.Replicas(2), d.topo.Replicas(0), d.topo.Replicas(1)}
	reordered, err := NewTopology(1, lists)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Dial(reordered)
	if err != nil {
		t.Fatal(err)
	}
	rc.Timeout = 30 * time.Second
	got, _, err := rc.SetsOfSets(ctx, "docs", bob, cfg)
	if err != nil {
		t.Fatalf("reordered-but-identical topology rejected: %v", err)
	}
	if !setutil.EqualSetOfSets(got.Recovered, want.Recovered) {
		t.Fatal("reordered client recovered a different parent set")
	}

	// A structurally different topology over the same addresses is a
	// different partition and must still fail the handshake.
	merged := [][]string{
		append(append([]string{}, d.topo.Replicas(0)...), d.topo.Replicas(1)...),
		d.topo.Replicas(2),
	}
	skewTopo, err := NewTopology(1, merged)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Dial(skewTopo)
	if err != nil {
		t.Fatal(err)
	}
	sc.Timeout = 30 * time.Second
	if _, _, err := sc.SetsOfSets(ctx, "docs", bob, cfg); !errors.Is(err, sosrnet.ErrMisrouted) {
		t.Fatalf("structurally different topology not rejected as misrouted: %v", err)
	}
}

func TestDialRejectsBadTopologies(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := SingleReplica(1, nil); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := SingleReplica(1, []string{"a:1", "a:1"}); err == nil {
		t.Fatal("duplicate address accepted")
	}
	if _, err := NewTopology(1, [][]string{{"a:1", "a:1"}}); err == nil {
		t.Fatal("duplicate replica within a shard accepted")
	}
	topo, err := SingleReplica(1, []string{"a:1", "b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(topo, [][]*sosrnet.Server{{sosrnet.NewServer()}}); err == nil {
		t.Fatal("server/shard count mismatch accepted")
	}
	if _, err := NewCoordinator(topo, [][]*sosrnet.Server{{sosrnet.NewServer()}, {sosrnet.NewServer(), sosrnet.NewServer()}}); err == nil {
		t.Fatal("server/replica count mismatch accepted")
	}
}

// TestConcurrentFanOuts: several logical reconciles in flight at once across
// the same replicated deployment (run under -race in CI).
func TestConcurrentFanOuts(t *testing.T) {
	ctx := context.Background()
	alice, bob := workload.PlantedSetsOfSets(31, 40, 8, 1<<32, 10)
	d := startReplicated(t, 3, 2)
	if err := d.co.HostSetsOfSets("docs", alice); err != nil {
		t.Fatal(err)
	}
	want, err := sosr.ReconcileSetsOfSets(alice, bob, sosr.Config{Seed: 0, Protocol: sosr.ProtocolCascade, KnownDiff: 24})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := sosr.Config{Seed: uint64(w), Protocol: sosr.ProtocolCascade, KnownDiff: 24}
			got, _, err := d.client.SetsOfSets(ctx, "docs", bob, cfg)
			if err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
				return
			}
			if !setutil.EqualSetOfSets(got.Recovered, want.Recovered) {
				errs <- fmt.Errorf("worker %d: wrong recovery", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
