package sosrshard

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sosr"
	"sosr/internal/setutil"
	"sosr/internal/workload"
	"sosr/sosrnet"
)

// countHandler is a slog.Handler counting the server's "session finished"
// records, so tests know when the per-shard byte counters are final.
type countHandler struct {
	n *atomic.Int64
}

func (h countHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h countHandler) Handle(_ context.Context, r slog.Record) error {
	if r.Message == "session finished" {
		h.n.Add(1)
	}
	return nil
}
func (h countHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h countHandler) WithGroup(string) slog.Handler      { return h }

// countingListener / countingConn give the tests an independent measurement
// of the real TCP traffic per shard (the ground truth the aggregated Stats
// must reproduce).
type countingListener struct {
	net.Listener
	n atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: c, n: &l.n}, nil
}

type countingConn struct {
	net.Conn
	n *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// shardDeployment is a loopback sharded deployment: n servers on n counting
// listeners, a coordinator over them, and a fan-out client.
type shardDeployment struct {
	co       *Coordinator
	client   *Client
	servers  []*sosrnet.Server
	counters []*countingListener
	sessions atomic.Int64 // finished server-side sessions (log lines)
}

func startShards(t *testing.T, n int) *shardDeployment {
	t.Helper()
	d := &shardDeployment{}
	addrs := make([]string, n)
	var serveWg sync.WaitGroup
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cl := &countingListener{Listener: ln}
		srv := sosrnet.NewServer()
		srv.Logger = slog.New(countHandler{n: &d.sessions})
		addrs[i] = ln.Addr().String()
		d.servers = append(d.servers, srv)
		d.counters = append(d.counters, cl)
		serveWg.Add(1)
		go func() { defer serveWg.Done(); srv.Serve(cl) }()
	}
	co, err := NewCoordinator(addrs, d.servers)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	client.Timeout = 60 * time.Second
	d.co, d.client = co, client
	t.Cleanup(func() {
		for _, srv := range d.servers {
			srv.Close()
		}
		serveWg.Wait()
	})
	return d
}

// waitSessions blocks until the servers have finished (logged) total
// sessions, so the listener byte counters are final.
func (d *shardDeployment) waitSessions(t *testing.T, total int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for d.sessions.Load() < total {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d server sessions (have %d)", total, d.sessions.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkAggregateParity verifies the itemized byte report: per shard, the
// listener-measured TCP bytes equal that shard's protocol bytes plus its
// framing overhead; in aggregate, total TCP bytes equal the summed Stats
// plus summed framing. This is the acceptance invariant for sharding.
func (d *shardDeployment) checkAggregateParity(t *testing.T, st *Stats) {
	t.Helper()
	if len(st.Shards) != len(d.counters) {
		t.Fatalf("itemized report covers %d shards, deployment has %d", len(st.Shards), len(d.counters))
	}
	var tcpTotal int64
	for i, sh := range st.Shards {
		tcp := d.counters[i].n.Load()
		tcpTotal += tcp
		if want := int64(sh.Net.Protocol.TotalBytes) + sh.Net.Overhead; tcp != want {
			t.Fatalf("shard %d: TCP bytes %d != protocol %d + framing %d",
				i, tcp, sh.Net.Protocol.TotalBytes, sh.Net.Overhead)
		}
		if sh.Net.WireIn+sh.Net.WireOut != int64(sh.Net.Protocol.TotalBytes)+sh.Net.Overhead {
			t.Fatalf("shard %d: wire accounting inconsistent: %+v", i, sh.Net)
		}
	}
	if want := int64(st.Protocol.TotalBytes) + st.Overhead; tcpTotal != want {
		t.Fatalf("total TCP bytes %d != Σ shard protocol %d + Σ framing %d",
			tcpTotal, st.Protocol.TotalBytes, st.Overhead)
	}
	if st.WireIn+st.WireOut != int64(st.Protocol.TotalBytes)+st.Overhead {
		t.Fatalf("aggregate wire accounting inconsistent: %+v", st)
	}
}

// TestShardedSetsOfSetsMatchesSingleInstance is the acceptance test: a
// 3-shard loopback fan-out recovers the identical difference set as a
// single-instance reconcile of the same data, and the measured TCP bytes
// equal the sum of the per-shard Stats plus itemized framing overhead.
func TestShardedSetsOfSetsMatchesSingleInstance(t *testing.T) {
	alice, bob := workload.PlantedSetsOfSets(17, 60, 8, 1<<32, 12)
	d := startShards(t, 3)
	if err := d.co.HostSetsOfSets("docs", alice); err != nil {
		t.Fatal(err)
	}
	cfg := sosr.Config{Seed: 77, Protocol: sosr.ProtocolCascade, KnownDiff: 24}
	want, err := sosr.ReconcileSetsOfSets(alice, bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := d.client.SetsOfSets("docs", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !setutil.EqualSetOfSets(got.Recovered, want.Recovered) {
		t.Fatal("sharded fan-out recovered a different parent set than the single-instance run")
	}
	wantAdded, wantRemoved := setutil.CloneSets(want.Added), setutil.CloneSets(want.Removed)
	setutil.SortSets(wantAdded)
	setutil.SortSets(wantRemoved)
	if !reflect.DeepEqual(got.Added, wantAdded) || !reflect.DeepEqual(got.Removed, wantRemoved) {
		t.Fatalf("sharded difference set diverges:\n  added   %v vs %v\n  removed %v vs %v",
			got.Added, wantAdded, got.Removed, wantRemoved)
	}
	// Every shard actually participated (the planted instance is large
	// enough that rendezvous hashing spreads children over all three).
	for i, sh := range st.Shards {
		if sh.Net.Protocol.TotalBytes == 0 {
			t.Fatalf("shard %d moved no protocol bytes", i)
		}
	}
	d.waitSessions(t, 3)
	d.checkAggregateParity(t, st)
}

// TestShardedSetsMatchesSingleInstance: same acceptance shape for plain sets.
func TestShardedSetsMatchesSingleInstance(t *testing.T) {
	alice := make([]uint64, 0, 800)
	for x := uint64(100); x < 900; x++ {
		alice = append(alice, x)
	}
	bob := append(append([]uint64{}, alice[5:]...), 10_000, 10_001, 10_002, 10_003, 10_004)
	d := startShards(t, 3)
	if err := d.co.HostSets("ids", alice); err != nil {
		t.Fatal(err)
	}
	cfg := sosr.SetConfig{Seed: 7, KnownDiff: 16}
	want, err := sosr.ReconcileSets(alice, bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := d.client.Sets("ids", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Recovered, setutil.Canonical(alice)) {
		t.Fatal("sharded fan-out did not recover the full logical set")
	}
	if !reflect.DeepEqual(got.OnlyA, want.OnlyA) || !reflect.DeepEqual(got.OnlyB, want.OnlyB) {
		t.Fatal("sharded difference set diverges from the single-instance run")
	}
	d.waitSessions(t, 3)
	d.checkAggregateParity(t, st)
}

// TestShardedMultisetMatchesSingleInstance: multiset fan-out merges to the
// same recovery as the unsharded reconcile.
func TestShardedMultisetMatchesSingleInstance(t *testing.T) {
	alice := []uint64{1, 1, 1, 2, 5, 5, 9, 9, 9, 9, 40, 41, 41, 77, 78, 79, 80, 80}
	bob := []uint64{1, 1, 2, 2, 5, 9, 9, 9, 9, 40, 41, 42, 77, 78, 79, 80}
	d := startShards(t, 3)
	if err := d.co.HostMultiset("bag", alice); err != nil {
		t.Fatal(err)
	}
	wantRec, _, err := sosr.ReconcileMultisets(alice, bob, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := d.client.Multiset("bag", bob, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantRec) {
		t.Fatalf("sharded multiset recovered %v, want %v", got, wantRec)
	}
	d.waitSessions(t, 3)
	d.checkAggregateParity(t, st)
}

// TestCoordinatorUpdatesVisibleToFanOut: a logical mutation routed by the
// coordinator is what the next fan-out reconcile sees — identical to a
// single-instance run over the updated logical dataset.
func TestCoordinatorUpdatesVisibleToFanOut(t *testing.T) {
	alice, bob := workload.PlantedSetsOfSets(23, 40, 8, 1<<32, 10)
	d := startShards(t, 3)
	if err := d.co.HostSetsOfSets("docs", alice); err != nil {
		t.Fatal(err)
	}
	added := []uint64{90_000_001, 90_000_005}
	removed := alice[7]
	if err := d.co.UpdateSetsOfSets("docs", [][]uint64{added}, [][]uint64{removed}); err != nil {
		t.Fatal(err)
	}
	updated := make([][]uint64, 0, len(alice))
	for i, cs := range alice {
		if i != 7 {
			updated = append(updated, cs)
		}
	}
	updated = append(updated, setutil.Canonical(added))
	cfg := sosr.Config{Seed: 5, Protocol: sosr.ProtocolCascade, KnownDiff: 24}
	want, err := sosr.ReconcileSetsOfSets(updated, bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := d.client.SetsOfSets("docs", bob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !setutil.EqualSetOfSets(got.Recovered, want.Recovered) {
		t.Fatal("fan-out after coordinator update diverges from single-instance run over updated data")
	}
	// Only the shards owning a touched child were bumped.
	bumped := map[int]bool{
		d.co.Map().OwnerOfSet(setutil.Canonical(added)): true,
		d.co.Map().OwnerOfSet(removed):                  true,
	}
	for i, srv := range d.servers {
		v, err := srv.DatasetVersion("docs")
		if err != nil {
			t.Fatal(err)
		}
		if bumped[i] && v == 0 {
			t.Fatalf("owning shard %d was not updated", i)
		}
		if !bumped[i] && v != 0 {
			t.Fatalf("non-owning shard %d version bumped to %d", i, v)
		}
	}
}

// TestMisconfiguredAddressOrderRejected: a client whose address list is
// ordered differently from the deployment's sends mismatched shard indices
// and must fail the handshake, never reconcile a wrong slice.
func TestMisconfiguredAddressOrderRejected(t *testing.T) {
	alice, bob := workload.PlantedSetsOfSets(29, 30, 6, 1<<32, 8)
	d := startShards(t, 3)
	if err := d.co.HostSetsOfSets("docs", alice); err != nil {
		t.Fatal(err)
	}
	addrs := d.client.Map().IDs()
	reversed := []string{addrs[2], addrs[1], addrs[0]}
	wrong, err := Dial(reversed)
	if err != nil {
		t.Fatal(err)
	}
	wrong.Timeout = 30 * time.Second
	if _, _, err := wrong.SetsOfSets("docs", bob, sosr.Config{Seed: 1, Protocol: sosr.ProtocolCascade, KnownDiff: 24}); err == nil {
		t.Fatal("reordered address list reconciled against misrouted shards")
	} else if !strings.Contains(err.Error(), "misrouted") {
		t.Fatalf("want a misroute handshake failure, got: %v", err)
	}
}

func TestDialRejectsBadAddressLists(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := Dial([]string{"a:1", "a:1"}); err == nil {
		t.Fatal("duplicate address accepted")
	}
	if _, err := NewCoordinator([]string{"a:1", "b:2"}, []*sosrnet.Server{sosrnet.NewServer()}); err == nil {
		t.Fatal("server/shard count mismatch accepted")
	}
}

// TestConcurrentFanOuts: several logical reconciles in flight at once across
// the same deployment (run under -race in CI).
func TestConcurrentFanOuts(t *testing.T) {
	alice, bob := workload.PlantedSetsOfSets(31, 40, 8, 1<<32, 10)
	d := startShards(t, 3)
	if err := d.co.HostSetsOfSets("docs", alice); err != nil {
		t.Fatal(err)
	}
	want, err := sosr.ReconcileSetsOfSets(alice, bob, sosr.Config{Seed: 0, Protocol: sosr.ProtocolCascade, KnownDiff: 24})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := sosr.Config{Seed: uint64(w), Protocol: sosr.ProtocolCascade, KnownDiff: 24}
			got, _, err := d.client.SetsOfSets("docs", bob, cfg)
			if err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
				return
			}
			if !setutil.EqualSetOfSets(got.Recovered, want.Recovered) {
				errs <- fmt.Errorf("worker %d: wrong recovery", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
