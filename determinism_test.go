package sosr

import (
	"testing"

	"sosr/internal/workload"
)

// Public-coin reproducibility: two runs with the same seed must produce
// byte-identical transcripts (this is what lets two real machines agree on
// every hash function without communication, §2).

func TestDeterministicTranscripts(t *testing.T) {
	alice, bob := workload.PlantedSetsOfSets(5, 16, 20, 1<<40, 7)
	for _, proto := range []Protocol{ProtocolNaive, ProtocolNested, ProtocolCascade, ProtocolMultiRound} {
		run := func() Stats {
			res, err := ReconcileSetsOfSets(alice, bob, Config{
				Seed: 42, MaxChildSets: 16, MaxChildSize: 20, Protocol: proto, KnownDiff: 7,
			})
			if err != nil {
				t.Fatalf("%v: %v", proto, err)
			}
			return res.Stats
		}
		a, b := run(), run()
		if a != b {
			t.Fatalf("%v: runs with equal seeds diverged: %+v vs %+v", proto, a, b)
		}
	}
}

func TestSeedChangesTranscript(t *testing.T) {
	alice, bob := workload.PlantedSetsOfSets(6, 12, 16, 1<<40, 4)
	r1, err := ReconcileSetsOfSets(alice, bob, Config{Seed: 1, KnownDiff: 4, Protocol: ProtocolMultiRound})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ReconcileSetsOfSets(alice, bob, Config{Seed: 2, KnownDiff: 4, Protocol: ProtocolMultiRound})
	if err != nil {
		t.Fatal(err)
	}
	// Same structure sizes but both must still recover correctly; the seeds
	// drive different hash functions (bytes may or may not coincide), so the
	// only invariant is correctness.
	if SetsOfSetsDistance(r1.Recovered, alice) != 0 || SetsOfSetsDistance(r2.Recovered, alice) != 0 {
		t.Fatal("seed change broke recovery")
	}
}

func TestDeterministicGraphAndForest(t *testing.T) {
	base, h, err := PlantedSeparatedGraph(480, 2, 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	ga := PerturbGraph(base, 1, 10)
	gb := PerturbGraph(base, 1, 11)
	run := func() Stats {
		res, err := ReconcileGraphs(ga, gb, GraphConfig{Seed: 3, Scheme: SchemeDegreeOrdering, MaxEdits: 2, TopDegrees: h})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("graph transcripts diverged: %+v vs %+v", a, b)
	}

	fa := RandomForest(100, 0.2, 12)
	fb := PerturbForest(fa, 2, 13)
	runF := func() Stats {
		res, err := ReconcileForests(fa, fb, ForestConfig{Seed: 4, MaxEdits: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	if a, b := runF(), runF(); a != b {
		t.Fatalf("forest transcripts diverged: %+v vs %+v", a, b)
	}
}

func TestReconcileSetsOfMultisets(t *testing.T) {
	alice := [][]uint64{
		{1, 1, 1, 2},
		{9, 9},
	}
	bob := [][]uint64{
		{1, 1, 2},
		{9, 9},
	}
	d := SetsOfMultisetsDistance(alice, bob)
	if d != 1 {
		t.Fatalf("multiset distance = %d, want 1", d)
	}
	res, err := ReconcileSetsOfMultisets(alice, bob, Config{Seed: 5, KnownDiff: 2 * d})
	if err != nil {
		t.Fatal(err)
	}
	if SetsOfMultisetsDistance(res.Recovered, alice) != 0 {
		t.Fatal("wrong multiset recovery")
	}
	if len(res.Added) != 1 || len(res.Removed) != 1 {
		t.Fatalf("diff %d/%d", len(res.Added), len(res.Removed))
	}
}

func TestReconcileSetsOfMultisetsRangeError(t *testing.T) {
	bad := [][]uint64{{1 << 50}}
	if _, err := ReconcileSetsOfMultisets(bad, bad, Config{Seed: 1, KnownDiff: 1}); err == nil {
		t.Fatal("out-of-range multiset element accepted")
	}
}
