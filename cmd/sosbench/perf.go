package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sosr"
	"sosr/internal/core"
	"sosr/internal/forest"
	"sosr/internal/graph"
	"sosr/internal/graphrecon"
	"sosr/internal/hashing"
	"sosr/internal/iblt"
	"sosr/internal/obs"
	"sosr/internal/prng"
	"sosr/internal/setrecon"
	"sosr/internal/workload"
	"sosr/sosrnet"
	"sosr/sosrshard"
)

// The -json perf suite measures the compute hot paths (encode and decode for
// every dataset family, plus the raw IBLT insert) and the end-to-end sosrnet
// loopback throughput. Output is machine-readable so successive runs can be
// committed (BENCH_baseline.json, BENCH_pr4.json, ...) and diffed; see the
// README "Performance" section for how to regenerate them.

// perfBench is one benchmark row of the JSON report.
type perfBench struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SessionsPerSec is set only for the net throughput rows.
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
	// P50Ms/P95Ms/P99Ms are per-session latency quantiles (server-side "done"
	// stage), read from the obs histograms; set only for the net rows.
	P50Ms float64 `json:"p50_ms,omitempty"`
	P95Ms float64 `json:"p95_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
	// BoundRatioMean/BoundRatioMax audit the paper's communication envelope:
	// protocol bytes divided by the resolved difference bound d̂. Set for the
	// encode rows (payload bytes ÷ d̂) and, from the servers' sosr_bound_ratio
	// histogram, for the session rows.
	BoundRatioMean float64 `json:"bound_ratio_mean,omitempty"`
	BoundRatioMax  float64 `json:"bound_ratio_max,omitempty"`
}

// boundRatio fills the envelope columns for a single encoding of known size.
func (pb *perfBench) boundRatio(bytes, dHat int) {
	if dHat <= 0 {
		return
	}
	r := float64(bytes) / float64(dHat)
	pb.BoundRatioMean, pb.BoundRatioMax = r, r
}

// boundRatios fills the envelope columns from a registry's sosr_bound_ratio
// histogram (every server session of the run).
func (pb *perfBench) boundRatios(reg *obs.Registry) {
	h := reg.GetHistogram("sosr_bound_ratio")
	if h == nil || h.Count() == 0 {
		return
	}
	pb.BoundRatioMean = h.Sum() / float64(h.Count())
	pb.BoundRatioMax = h.Quantile(1)
}

// sessionQuantiles fills the latency-quantile columns from a registry's
// whole-session stage histogram (merged across all servers sharing reg).
func (pb *perfBench) sessionQuantiles(reg *obs.Registry) {
	h := reg.GetHistogram("sosr_stage_seconds", "done")
	if h == nil || h.Count() == 0 {
		return
	}
	pb.P50Ms = h.Quantile(0.50) * 1000
	pb.P95Ms = h.Quantile(0.95) * 1000
	pb.P99Ms = h.Quantile(0.99) * 1000
}

// perfReport is the top-level JSON document.
type perfReport struct {
	Suite      string      `json:"suite"`
	Go         string      `json:"go"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []perfBench `json:"benchmarks"`
}

func perfRow(name string, f func(b *testing.B)) perfBench {
	r := testing.Benchmark(f)
	return perfBench{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// perfJSON runs the suite and writes the JSON report to w.
func perfJSON(w io.Writer) error {
	report := perfReport{
		Suite:      "sosr-perf",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	coins := hashing.NewCoins(42)

	// --- raw IBLT hot loop ---
	report.Benchmarks = append(report.Benchmarks, perfRow("iblt/insert-uint64", func(b *testing.B) {
		t := iblt.NewUint64(1024, 0, 1)
		src := prng.New(2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t.InsertUint64(src.Uint64())
		}
	}))
	report.Benchmarks = append(report.Benchmarks, perfRow("iblt/decode-256", func(b *testing.B) {
		src := prng.New(3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := iblt.NewUint64(iblt.CellsFor(256), 0, src.Uint64())
			for k := 0; k < 256; k++ {
				t.InsertUint64(src.Uint64())
			}
			b.StartTimer()
			_, _, _ = t.DecodeUint64()
		}
	}))

	// --- one-level sets (Corollary 2.2) ---
	setAlice := make([]uint64, 0, 20000)
	for x := uint64(0); x < 20000; x++ {
		setAlice = append(setAlice, x*3+1)
	}
	setBob := append(append([]uint64{}, setAlice[32:]...), 1_000_001, 1_000_004, 1_000_007)
	setMsg := setrecon.BuildIBLTMsg(coins, setAlice, 64)
	setEncode := perfRow("set/encode-d64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			setrecon.BuildIBLTMsg(coins, setAlice, 64)
		}
	})
	setEncode.boundRatio(len(setMsg), 64)
	report.Benchmarks = append(report.Benchmarks, setEncode)
	report.Benchmarks = append(report.Benchmarks, perfRow("set/decode-d64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := setrecon.ApplyIBLTMsg(coins, setMsg, setBob); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// --- sets of sets (cascade / nested one-round payloads) ---
	sosAlice, sosBob := workload.PlantedSetsOfSets(17, 200, 10, 1<<32, 16)
	p := core.Params{S: 200, H: 16, U: 1 << 32}
	if np, err := p.Normalized(); err == nil {
		p = np
	}
	for _, cfg := range []struct {
		name string
		kind core.DigestKind
		d    int
	}{
		{"sos/cascade", core.DigestCascade, 32},
		{"sos/nested", core.DigestNested, 16},
	} {
		dHat := core.DHat(cfg.d, p.S)
		msg, err := core.AliceMsg(cfg.kind, coins, sosAlice, p, cfg.d, dHat)
		if err != nil {
			return fmt.Errorf("%s encode: %w", cfg.name, err)
		}
		if _, err := core.ApplyMsg(cfg.kind, coins, msg, sosBob, p, cfg.d, dHat); err != nil {
			return fmt.Errorf("%s decode: %w", cfg.name, err)
		}
		encRow := perfRow(cfg.name+"-encode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.AliceMsg(cfg.kind, coins, sosAlice, p, cfg.d, dHat); err != nil {
					b.Fatal(err)
				}
			}
		})
		encRow.boundRatio(len(msg), dHat)
		report.Benchmarks = append(report.Benchmarks, encRow)
		report.Benchmarks = append(report.Benchmarks, perfRow(cfg.name+"-decode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ApplyMsg(cfg.kind, coins, msg, sosBob, p, cfg.d, dHat); err != nil {
					b.Fatal(err)
				}
			}
		}))
		// Cached Bob subtraction: the per-session decode cost once the client's
		// sketch cache (or the server pull path) has memoized Bob's encodings.
		sk, err := core.NewBobSketch(cfg.kind, coins, sosBob, p, cfg.d, dHat)
		if err != nil {
			return fmt.Errorf("%s sketch: %w", cfg.name, err)
		}
		report.Benchmarks = append(report.Benchmarks, perfRow(cfg.name+"-decode-cached", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ApplyMsgCached(cfg.kind, coins, msg, sosBob, p, cfg.d, dHat, sk); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// --- graphs (degree-ordering scheme) ---
	gsrc := prng.New(11)
	gBase, gh, err := graphrecon.PlantedSeparated(480, 2, 0.4, gsrc)
	if err != nil {
		return fmt.Errorf("graph workload: %w", err)
	}
	ga, _ := graph.Perturb(gBase, 1, gsrc)
	gb, _ := graph.Perturb(gBase, 1, gsrc)
	gp := graphrecon.DegreeOrderParams{H: gh, D: 2}
	gmsgs, err := graphrecon.DegreeOrderAlice(coins, ga, gp)
	if err != nil {
		return fmt.Errorf("graph encode: %w", err)
	}
	report.Benchmarks = append(report.Benchmarks, perfRow("graph/degree-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graphrecon.DegreeOrderAlice(coins, ga, gp); err != nil {
				b.Fatal(err)
			}
		}
	}))
	report.Benchmarks = append(report.Benchmarks, perfRow("graph/degree-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graphrecon.DegreeOrderApply(coins, gb, gp, gmsgs.Sig, gmsgs.Edges); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// --- forests ---
	fsrc := prng.New(51)
	fa := forest.Random(600, 0.2, fsrc)
	fb := forest.Perturb(fa, 3, fsrc)
	sigma := fa.Depth()
	if s := fb.Depth(); s > sigma {
		sigma = s
	}
	rp, fparams := forest.Plan(forest.Measure(fa), forest.Measure(fb), forest.ReconParams{Sigma: sigma, D: 3})
	sig, meta, err := forest.AliceMsg(coins, fa, rp, fparams)
	if err != nil {
		return fmt.Errorf("forest encode: %w", err)
	}
	report.Benchmarks = append(report.Benchmarks, perfRow("forest/encode-d3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := forest.AliceMsg(coins, fa, rp, fparams); err != nil {
				b.Fatal(err)
			}
		}
	}))
	report.Benchmarks = append(report.Benchmarks, perfRow("forest/decode-d3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := forest.Apply(coins, fb, rp, fparams, sig, meta); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// --- sosrnet loopback throughput on a hot dataset ---
	for _, clients := range []int{1, 32} {
		row, err := netSessions(sosAlice, sosBob, clients, 3*time.Second)
		if err != nil {
			return err
		}
		report.Benchmarks = append(report.Benchmarks, row)
	}

	// --- sharded fan-out throughput (3 loopback shards per reconcile) ---
	for _, clients := range []int{1, 8} {
		row, err := shardedSessions(sosAlice, sosBob, 3, clients, 3*time.Second)
		if err != nil {
			return err
		}
		report.Benchmarks = append(report.Benchmarks, row)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}

// netSessions measures end-to-end sessions/sec over loopback TCP: `clients`
// concurrent connections repeatedly reconciling the same hosted sets-of-sets
// dataset (the hot-dataset regime the server-side encode cache targets).
func netSessions(alice, bob [][]uint64, clients int, dur time.Duration) (perfBench, error) {
	srv := sosrnet.NewServer()
	srv.Obs = obs.NewRegistry()
	if err := srv.HostSetsOfSets("docs", alice); err != nil {
		return perfBench{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return perfBench{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	cfg := sosr.Config{Seed: 7, Protocol: sosr.ProtocolCascade, KnownDiff: 32}

	// Warm up (connection setup, and at PR 4 the server-side encode cache).
	warm := sosrnet.Dial(addr)
	if _, _, err := warm.SetsOfSets(context.Background(), "docs", bob, cfg); err != nil {
		return perfBench{}, fmt.Errorf("warmup session: %w", err)
	}

	var sessions atomic.Int64
	var failed atomic.Int64
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := sosrnet.Dial(addr)
			for time.Now().Before(deadline) {
				if _, _, err := c.SetsOfSets(context.Background(), "docs", bob, cfg); err != nil {
					failed.Add(1)
					return
				}
				sessions.Add(1)
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if failed.Load() != 0 {
		return perfBench{}, fmt.Errorf("net/sessions-%d: %d sessions failed", clients, failed.Load())
	}
	n := sessions.Load()
	row := perfBench{
		Name:           fmt.Sprintf("net/sessions-%dclients", clients),
		N:              int(n),
		NsPerOp:        float64(elapsed.Nanoseconds()) / float64(max(n, 1)),
		SessionsPerSec: float64(n) / elapsed.Seconds(),
	}
	row.sessionQuantiles(srv.Registry())
	row.boundRatios(srv.Registry())
	return row, nil
}

// shardedSessions measures whole fan-out reconciles/sec: `clients`
// concurrent logical clients, each reconciling the sharded hosted dataset
// across `shards` loopback sosrd shard instances per operation.
func shardedSessions(alice, bob [][]uint64, shards, clients int, dur time.Duration) (perfBench, error) {
	addrs := make([]string, shards)
	servers := make([]*sosrnet.Server, shards)
	// One registry across all shard servers: family registration is
	// idempotent, so the per-shard-session "done" histograms merge and the
	// quantiles cover every shard session of the run.
	reg := obs.NewRegistry()
	for i := range servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return perfBench{}, err
		}
		servers[i] = sosrnet.NewServer()
		servers[i].Obs = reg
		addrs[i] = ln.Addr().String()
		go servers[i].Serve(ln)
		defer servers[i].Close()
	}
	topo, err := sosrshard.SingleReplica(1, addrs)
	if err != nil {
		return perfBench{}, err
	}
	groups := make([][]*sosrnet.Server, len(servers))
	for i, srv := range servers {
		groups[i] = []*sosrnet.Server{srv}
	}
	co, err := sosrshard.NewCoordinator(topo, groups)
	if err != nil {
		return perfBench{}, err
	}
	if err := co.HostSetsOfSets("docs", alice); err != nil {
		return perfBench{}, err
	}
	c, err := sosrshard.Dial(topo)
	if err != nil {
		return perfBench{}, err
	}
	cfg := sosr.Config{Seed: 7, Protocol: sosr.ProtocolCascade, KnownDiff: 32}
	if _, _, err := c.SetsOfSets(context.Background(), "docs", bob, cfg); err != nil {
		return perfBench{}, fmt.Errorf("sharded warmup: %w", err)
	}

	var fanouts atomic.Int64
	var failed atomic.Int64
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, _, err := c.SetsOfSets(context.Background(), "docs", bob, cfg); err != nil {
					failed.Add(1)
					return
				}
				fanouts.Add(1)
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if failed.Load() != 0 {
		return perfBench{}, fmt.Errorf("shard/reconcile-%dshards-%dclients: %d fan-outs failed", shards, clients, failed.Load())
	}
	n := fanouts.Load()
	row := perfBench{
		Name:           fmt.Sprintf("shard/reconcile-%dshards-%dclients", shards, clients),
		N:              int(n),
		NsPerOp:        float64(elapsed.Nanoseconds()) / float64(max(n, 1)),
		SessionsPerSec: float64(n) / elapsed.Seconds(),
	}
	row.sessionQuantiles(reg)
	row.boundRatios(reg)
	return row, nil
}

// runPerfJSON is the -json entry point.
func runPerfJSON() {
	if err := perfJSON(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "perf suite: %v\n", err)
		os.Exit(1)
	}
}
