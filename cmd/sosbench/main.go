// Command sosbench regenerates the paper's evaluation artifacts and the
// supporting experiments (see DESIGN.md §3 and EXPERIMENTS.md):
//
//	sosbench -experiment table1      # Table 1: the four SSRK protocols
//	sosbench -experiment figure1     # Figure 1: ambiguous two-way merge
//	sosbench -experiment iblt        # E3: IBLT decode threshold sweep
//	sosbench -experiment estimator   # E5: Thm 3.1 estimator vs strata [14]
//	sosbench -experiment crossover   # E7: nested vs cascade over d
//	sosbench -experiment unknownd    # E9: unknown-d variants
//	sosbench -experiment graphs      # E11: degree-ordering reconciliation
//	sosbench -experiment separation  # E11b: honest G(n,p) separation rate
//	sosbench -experiment neighborhood# E12: degree-neighborhood scheme
//	sosbench -experiment forest      # E13: forest reconciliation
//	sosbench -experiment all         # everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sosr/internal/core"
	"sosr/internal/estimator"
	"sosr/internal/forest"
	"sosr/internal/graph"
	"sosr/internal/graphrecon"
	"sosr/internal/hashing"
	"sosr/internal/iblt"
	"sosr/internal/prng"
	"sosr/internal/transport"
	"sosr/internal/workload"
)

var (
	experiment = flag.String("experiment", "all", "which experiment to run (table1, figure1, iblt, estimator, crossover, unknownd, graphs, separation, neighborhood, forest, all)")
	trials     = flag.Int("trials", 5, "trials per configuration")
	seed       = flag.Uint64("seed", 1, "master seed")
	sFlag      = flag.Int("s", 48, "child sets per parent (Table 1 regime)")
	hFlag      = flag.Int("h", 16384, "columns / max child size (Table 1 regime; the paper's ordering needs large u)")
	jsonFlag   = flag.Bool("json", false, "run the perf suite and print a machine-readable JSON report instead of the experiments")
)

func main() {
	flag.Parse()
	if *jsonFlag {
		runPerfJSON()
		return
	}
	run := map[string]func(){
		"table1":       table1,
		"figure1":      figure1,
		"iblt":         ibltThreshold,
		"estimator":    estimatorCompare,
		"crossover":    crossover,
		"unknownd":     unknownD,
		"graphs":       graphs,
		"separation":   separation,
		"neighborhood": neighborhood,
		"forest":       forests,
		"depth3":       depth3,
	}
	if *experiment == "all" {
		for _, name := range []string{"table1", "figure1", "iblt", "estimator", "crossover", "unknownd", "graphs", "separation", "neighborhood", "forest", "depth3"} {
			fmt.Printf("\n════ %s ════\n", name)
			run[name]()
		}
		return
	}
	f, ok := run[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	f()
}

type protoRun struct {
	name string
	run  func(sess transport.Channel, coins hashing.Coins, alice, bob [][]uint64, p core.Params, d int) error
}

var protocols = []protoRun{
	{"naive (Thm 3.3)", func(sess transport.Channel, coins hashing.Coins, alice, bob [][]uint64, p core.Params, d int) error {
		_, err := core.NaiveKnownD(sess, coins, alice, bob, p, core.DHat(d, p.S))
		return err
	}},
	{"nested (Thm 3.5)", func(sess transport.Channel, coins hashing.Coins, alice, bob [][]uint64, p core.Params, d int) error {
		_, err := core.NestedKnownD(sess, coins, alice, bob, p, d, core.DHat(d, p.S))
		return err
	}},
	{"cascade (Thm 3.7)", func(sess transport.Channel, coins hashing.Coins, alice, bob [][]uint64, p core.Params, d int) error {
		_, err := core.CascadeKnownD(sess, coins, alice, bob, p, d)
		return err
	}},
	{"multiround (Thm 3.9)", func(sess transport.Channel, coins hashing.Coins, alice, bob [][]uint64, p core.Params, d int) error {
		_, err := core.MultiRoundKnownD(sess, coins, alice, bob, p, d)
		return err
	}},
}

// table1 regenerates Table 1 empirically on the binary-database regime.
func table1() {
	s, h := *sFlag, *hFlag
	fmt.Printf("Table 1 regime: s=%d child sets, h=u=%d columns, density 0.5, n≈%d\n", s, h, s*h/2)
	fmt.Printf("%-22s %6s %12s %10s %8s %8s\n", "protocol", "d", "wire bytes", "time", "rounds", "ok")
	for _, d := range []int{2, 4, 8, 16} {
		db := workload.RandomDatabase(*seed+uint64(d), s, h, 0.5, nil)
		flipped := workload.FlipBits(db, d, prng.New(*seed^uint64(d)*7))
		alice, bob := flipped.SetsOfSets(), db.SetsOfSets()
		p := core.Params{S: s, H: h, U: uint64(h)}
		for _, pr := range protocols {
			var bytes, rounds, ok int
			var elapsed time.Duration
			coins := hashing.NewCoins(*seed + uint64(d)*31)
			for t := 0; t < *trials; t++ {
				sess := transport.New()
				start := time.Now()
				err := pr.run(sess, coins.Sub("t", t), alice, bob, p, d)
				elapsed += time.Since(start)
				bytes += sess.TotalBytes()
				rounds += sess.Rounds()
				if err == nil {
					ok++
				}
			}
			fmt.Printf("%-22s %6d %12d %10v %8.1f %7d/%d\n",
				pr.name, d, bytes / *trials, (elapsed / time.Duration(*trials)).Round(time.Microsecond),
				float64(rounds)/float64(*trials), ok, *trials)
		}
	}
	fmt.Println("\nPaper's asserted ordering at large u, small d: communication naive > nested > cascade > multiround;")
	fmt.Println("computation naive < nested < cascade ≈ multiround (multiround pays rounds instead of bytes).")
}

// figure1 prints a concrete witness for Figure 1.
func figure1() {
	w := graph.FindFigure1Witness(5)
	if w == nil {
		fmt.Println("no witness found on 5 vertices")
		return
	}
	fmt.Println("Figure 1 witness (5 vertices): merging unlabeled graphs is ambiguous.")
	fmt.Printf("G1 edges: %v\n", w.G1.Edges())
	fmt.Printf("G2 edges: %v\n", w.G2.Edges())
	fmt.Printf("Merge X: add %v to G1 and %v to G2 -> isomorphic results %v\n", w.E1, w.F1, w.MergeX.Edges())
	fmt.Printf("Merge Y: add %v to G1 and %v to G2 -> isomorphic results %v\n", w.E2, w.F2, w.MergeY.Edges())
	fmt.Printf("X ≅ Y? %v  (the two valid merges disagree, so the union is ill-defined)\n",
		graph.TinyIsomorphic(w.MergeX, w.MergeY))
}

// ibltThreshold sweeps the cells-per-key ratio (E3, Theorem 2.1's constant).
func ibltThreshold() {
	fmt.Printf("%-8s %-10s %-12s\n", "d", "cells/d", "success")
	src := prng.New(*seed)
	for _, d := range []int{4, 16, 64, 256} {
		for _, ratio := range []float64{1.2, 1.5, 2.0, 2.5} {
			cells := int(float64(d) * ratio)
			success := 0
			const reps = 200
			for r := 0; r < reps; r++ {
				t := iblt.NewUint64(cells, 0, src.Uint64())
				for k := 0; k < d; k++ {
					t.InsertUint64(src.Uint64())
				}
				if _, _, err := t.Decode(); err == nil {
					success++
				}
			}
			fmt.Printf("%-8d %-10.1f %6.1f%%\n", d, ratio, 100*float64(success)/reps)
		}
	}
	fmt.Println("Theorem 2.1: an O(d)-cell table decodes d keys whp; the sweep locates the practical constant.")
}

// estimatorCompare measures accuracy and size of the two estimators (E5).
func estimatorCompare() {
	fmt.Printf("%-8s %-16s %-16s\n", "d", "l0 est (Thm 3.1)", "strata est [14]")
	src := prng.New(*seed + 3)
	for _, d := range []int{8, 64, 512, 4096} {
		var l0Sum, strataSum uint64
		for t := 0; t < *trials; t++ {
			e := estimator.New(estimator.Params{}, uint64(t))
			sa := estimator.NewStrata(32, 0, uint64(t))
			sb := estimator.NewStrata(32, 0, uint64(t))
			for k := 0; k < d; k++ {
				x := src.Uint64()
				side := estimator.SideA
				if k%2 == 1 {
					side = estimator.SideB
				}
				e.Add(x, side)
				if side == estimator.SideA {
					sa.Add(x, side)
				} else {
					sb.Add(x, side)
				}
			}
			_ = sa.Merge(sb)
			l0Sum += e.Estimate()
			strataSum += sa.Estimate()
		}
		fmt.Printf("%-8d %-16d %-16d\n", d, l0Sum/uint64(*trials), strataSum/uint64(*trials))
	}
	e := estimator.New(estimator.Params{}, 1)
	st := estimator.NewStrata(32, 0, 1)
	fmt.Printf("sketch sizes: l0=%dB strata=%dB (the paper's estimator drops the O(log u) strata factor)\n",
		e.SerializedSize(), st.SerializedSize())
}

// crossover sweeps d for nested vs cascade (E7).
func crossover() {
	s, h := 96, 96
	fmt.Printf("%-8s %-14s %-14s\n", "d", "nested bytes", "cascade bytes")
	for _, d := range []int{2, 4, 8, 16, 32, 64} {
		db := workload.RandomDatabase(*seed+uint64(d), s, h, 0.5, nil)
		flipped := workload.FlipBits(db, d, prng.New(*seed+uint64(d)*3))
		alice, bob := flipped.SetsOfSets(), db.SetsOfSets()
		p := core.Params{S: s, H: h, U: uint64(h)}
		coins := hashing.NewCoins(*seed + uint64(d))
		nested := transport.New()
		_, errN := core.NestedKnownD(nested, coins.Sub("n", 0), alice, bob, p, d, core.DHat(d, p.S))
		cascade := transport.New()
		_, errC := core.CascadeKnownD(cascade, coins.Sub("c", 0), alice, bob, p, d)
		mark := ""
		if errN != nil || errC != nil {
			mark = " (retry needed)"
		}
		fmt.Printf("%-8d %-14d %-14d%s\n", d, nested.TotalBytes(), cascade.TotalBytes(), mark)
	}
	fmt.Println("Theorem 3.5 is O(d̂·d log u); Theorem 3.7 is O(d log d log u): cascade wins once d is large.")
}

// unknownD compares the unknown-d strategies (E9).
func unknownD() {
	s, h, d := *sFlag, *hFlag, 12
	db := workload.RandomDatabase(*seed+99, s, h, 0.5, nil)
	flipped := workload.FlipBits(db, d, prng.New(*seed+100))
	alice, bob := flipped.SetsOfSets(), db.SetsOfSets()
	p := core.Params{S: s, H: h, U: uint64(h)}
	fmt.Printf("true d=%d (hidden from protocols)\n", d)
	fmt.Printf("%-26s %10s %8s\n", "variant", "bytes", "rounds")
	cases := []struct {
		name string
		run  func(sess transport.Channel, coins hashing.Coins) error
	}{
		{"nested doubling (Cor 3.6)", func(sess transport.Channel, c hashing.Coins) error {
			_, err := core.NestedUnknownD(sess, c, alice, bob, p)
			return err
		}},
		{"cascade doubling (Cor 3.8)", func(sess transport.Channel, c hashing.Coins) error {
			_, err := core.CascadeUnknownD(sess, c, alice, bob, p)
			return err
		}},
		{"multiround 4-round (Thm 3.10)", func(sess transport.Channel, c hashing.Coins) error {
			_, err := core.MultiRoundUnknownD(sess, c, alice, bob, p)
			return err
		}},
	}
	for _, cse := range cases {
		sess := transport.New()
		if err := cse.run(sess, hashing.NewCoins(*seed+7)); err != nil {
			fmt.Printf("%-26s failed: %v\n", cse.name, err)
			continue
		}
		fmt.Printf("%-26s %10d %8d\n", cse.name, sess.TotalBytes(), sess.Rounds())
	}
}

// graphs runs the degree-ordering scheme on planted separated graphs (E11).
func graphs() {
	fmt.Printf("%-8s %-6s %-6s %12s %14s %10s\n", "n", "d", "h", "wire bytes", "raw edges B", "iso ok")
	for _, n := range []int{480, 960} {
		d := 2
		src := prng.New(*seed + uint64(n))
		g, h, err := graphrecon.PlantedSeparated(n, d, 0.4, src)
		if err != nil {
			fmt.Printf("n=%d: %v\n", n, err)
			continue
		}
		ga, _ := graph.Perturb(g, 1, src)
		gb, _ := graph.Perturb(g, 1, src)
		sess := transport.New()
		rec, _, err := graphrecon.DegreeOrderingRecon(sess, hashing.NewCoins(*seed+2), ga, gb,
			graphrecon.DegreeOrderParams{H: h, D: d})
		ok := err == nil && graph.IsIsomorphic(rec, ga)
		fmt.Printf("%-8d %-6d %-6d %12d %14d %10v\n", n, d, h, sess.TotalBytes(), ga.EdgeCount()*8, ok)
	}
	fmt.Println("Theorem 5.2: O(d(log d log h + log n)) bits — constant in n, far below shipping the edges.")
}

// separation measures how often honest G(n, p) is separated (E11b): the gap
// between Theorem 5.3's asymptotics and laptop-scale n.
func separation() {
	src := prng.New(*seed + 5)
	fmt.Printf("%-8s %-8s %-22s\n", "n", "p", "(h,2,3)-separated rate")
	for _, n := range []int{128, 256, 512, 1024} {
		rate, bestH := graphrecon.SeparationRate(n, 0.5, 2, 3, 32, 10, src)
		fmt.Printf("%-8d %-8.2f %6.0f%% (best h=%d)\n", n, 0.5, rate*100, bestH)
	}
	fmt.Println("Theorem 5.3 needs n far beyond laptop scale; the degree-ordering experiments therefore")
	fmt.Println("use planted separated graphs (see DESIGN.md substitutions).")
}

// neighborhood runs the §5.2 scheme on honest G(n, 1/2) (E12).
func neighborhood() {
	src := prng.New(*seed + 6)
	fmt.Printf("%-8s %-10s %-12s %12s %10s\n", "n", "disjoint", "supports d", "wire bytes", "iso ok")
	for _, n := range []int{128, 256} {
		m := n * 3 / 4
		g := graph.Gnp(n, 0.5, src)
		k := graphrecon.MinNeighborhoodDisjointness(g, m)
		d := (k - 1) / 8
		if d < 1 {
			fmt.Printf("%-8d %-10d insufficient disjointness\n", n, k)
			continue
		}
		if d > 2 {
			d = 2
		}
		ga, _ := graph.Perturb(g, d/2+d%2, src)
		gb, _ := graph.Perturb(g, d/2, src)
		sess := transport.New()
		rec, _, err := graphrecon.NeighborhoodRecon(sess, hashing.NewCoins(*seed+8), ga, gb,
			graphrecon.NeighborhoodParams{M: m, D: d})
		ok := err == nil && graph.IsIsomorphic(rec, ga)
		fmt.Printf("%-8d %-10d %-12d %12d %10v\n", n, k, d, sess.TotalBytes(), ok)
	}
	fmt.Println("Theorem 5.6 costs ~O(dpn·polylog) bits — heavier than §5.1 but valid at honest laptop-scale n.")
}

// forests sweeps forest reconciliation (E13).
func forests() {
	src := prng.New(*seed + 7)
	fmt.Printf("%-8s %-6s %-6s %12s %10s\n", "n", "d", "σ", "wire bytes", "iso ok")
	for _, n := range []int{200, 600, 1800} {
		d := 3
		fa := forest.Random(n, 0.2, src)
		fb := forest.Perturb(fa, d, src)
		sigma := fa.Depth()
		if s := fb.Depth(); s > sigma {
			sigma = s
		}
		sess := transport.New()
		rec, _, err := forest.Recon(sess, hashing.NewCoins(*seed+9), fa, fb, forest.ReconParams{Sigma: sigma, D: d})
		ok := err == nil && forest.IsIsomorphic(rec, fa)
		fmt.Printf("%-8d %-6d %-6d %12d %10v\n", n, d, sigma, sess.TotalBytes(), ok)
	}
	fmt.Println("Theorem 6.1: O(dσ log(dσ) log n) bits — driven by d·σ, nearly flat in n.")
}

// depth3 exercises the §3.2 future-work recursion: sets of sets of sets.
func depth3() {
	src := prng.New(*seed + 11)
	used := map[uint64]bool{}
	next := func() uint64 {
		for {
			x := src.Uint64() % (1 << 40)
			if !used[x] {
				used[x] = true
				return x
			}
		}
	}
	g, sCount, hSize := 8, 8, 12
	bob := make([][][]uint64, g)
	for gi := range bob {
		bob[gi] = make([][]uint64, sCount)
		for si := range bob[gi] {
			var cs []uint64
			for j := 0; j < hSize; j++ {
				cs = append(cs, next())
			}
			for i := 1; i < len(cs); i++ {
				for k := i; k > 0 && cs[k] < cs[k-1]; k-- {
					cs[k], cs[k-1] = cs[k-1], cs[k]
				}
			}
			bob[gi][si] = cs
		}
	}
	alice := make([][][]uint64, g)
	for gi := range bob {
		alice[gi] = make([][]uint64, sCount)
		for si := range bob[gi] {
			alice[gi][si] = append([]uint64(nil), bob[gi][si]...)
		}
	}
	fmt.Printf("%-8s %12s %10s\n", "d", "wire bytes", "ok")
	for _, d := range []int{1, 2, 4, 8} {
		for e := 0; e < d; e++ {
			gi, si := src.Intn(g), src.Intn(sCount)
			cs := append([]uint64(nil), alice[gi][si]...)
			cs = append(cs, next())
			for i := 1; i < len(cs); i++ {
				for k := i; k > 0 && cs[k] < cs[k-1]; k-- {
					cs[k], cs[k-1] = cs[k-1], cs[k]
				}
			}
			alice[gi][si] = cs
		}
		dTrue := core.Distance3(alice, bob)
		sess := transport.New()
		res, err := core.Nested3KnownD(sess, hashing.NewCoins(*seed+uint64(d)), alice, bob,
			core.Params3{G: g, S: sCount, H: hSize + 8}, core.Bounds3{D: dTrue})
		ok := err == nil && core.Equal3(res.Recovered, alice)
		fmt.Printf("%-8d %12d %10v\n", dTrue, sess.TotalBytes(), ok)
	}
	fmt.Println("§3.2 future work: one more recursion level costs one more multiplicative difference factor.")
}
