// Command graphsync demonstrates one-way unlabeled graph reconciliation
// (§5): it samples a base graph, perturbs it into Alice's and Bob's copies,
// runs the selected signature scheme, and reports communication versus
// shipping the edge list.
//
//	graphsync -scheme order -n 720 -d 2        # §5.1 on a planted separated graph
//	graphsync -scheme neighborhood -n 128 -d 1 # §5.2 on honest G(n, 1/2)
//	graphsync -scheme poly -n 6 -d 2           # §4 tiny-graph protocol
package main

import (
	"flag"
	"fmt"
	"os"

	"sosr"
)

var (
	scheme = flag.String("scheme", "order", "order | neighborhood | poly")
	n      = flag.Int("n", 720, "vertices")
	d      = flag.Int("d", 2, "total edge edits between the two copies")
	p      = flag.Float64("p", 0.4, "edge density of the base graph")
	seed   = flag.Uint64("seed", 7, "seed")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphsync:", err)
		os.Exit(1)
	}
}

func run() error {
	var base sosr.Graph
	cfg := sosr.GraphConfig{Seed: *seed + 1, MaxEdits: *d}
	switch *scheme {
	case "order":
		g, h, err := sosr.PlantedSeparatedGraph(*n, *d, *p, *seed)
		if err != nil {
			return err
		}
		base = g
		cfg.Scheme = sosr.SchemeDegreeOrdering
		cfg.TopDegrees = h
		fmt.Printf("degree-ordering scheme (§5.1), planted separated base: n=%d, h=%d\n", *n, h)
	case "neighborhood":
		m := *n * 3 / 4
		for attempt := 0; ; attempt++ {
			if attempt >= 50 {
				return fmt.Errorf("no (m, %d)-disjoint G(n, p) base found; raise -n", 8**d+1)
			}
			g := sosr.RandomGraph(*n, *p, *seed+uint64(attempt))
			if sosr.NeighborhoodDisjointness(g, m) >= 8**d+1 {
				base = g
				break
			}
		}
		cfg.Scheme = sosr.SchemeDegreeNeighborhood
		cfg.DegreeThreshold = m
		fmt.Printf("degree-neighborhood scheme (§5.2), honest G(%d, %.2f), m=%d\n", *n, *p, m)
	case "poly":
		if *n > 6 {
			return fmt.Errorf("poly scheme is exponential; use -n 6 or less")
		}
		base = sosr.RandomGraph(*n, *p, *seed)
		cfg.Scheme = sosr.SchemePolynomial
		fmt.Printf("polynomial scheme (§4, Thm 4.3), n=%d\n", *n)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	alice := sosr.PerturbGraph(base, (*d+1)/2, *seed+101)
	bob := sosr.PerturbGraph(base, *d/2, *seed+202)
	res, err := sosr.ReconcileGraphs(alice, bob, cfg)
	if err != nil {
		return err
	}
	raw := alice.EdgeCount() * 8
	fmt.Printf("  edges: %d (alice), %d (bob)\n", alice.EdgeCount(), bob.EdgeCount())
	fmt.Printf("  wire bytes: %d (vs %d to ship the edge list) in %d round(s)\n",
		res.Stats.TotalBytes, raw, res.Stats.Rounds)
	ok := sosr.GraphsExactlyIsomorphic(res.Recovered, alice)
	fmt.Printf("  recovered graph isomorphic to Alice's: %v\n", ok)
	if !ok {
		return fmt.Errorf("verification failed")
	}
	return nil
}
