// Command dbsync reconciles two binary relational databases whose rows are
// unlabeled (the paper's §1 database application). Databases are text files:
// one row per line, each line a string of '0'/'1' characters of equal
// length (the labeled columns).
//
//	dbsync -generate -rows 64 -cols 96 -flips 6 a.db b.db   # make a demo pair
//	dbsync a.db b.db                                        # reconcile b -> a
//
// Reconciliation is one-way: the program reports what the holder of the
// second database must add/remove to hold the first, and how many bytes a
// real exchange would take versus shipping the whole file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sosr/internal/prng"
	"sosr/internal/setutil"
	"sosr/internal/workload"

	"sosr"
)

var (
	generate = flag.Bool("generate", false, "generate a demo database pair instead of reconciling")
	rows     = flag.Int("rows", 64, "rows for -generate")
	cols     = flag.Int("cols", 96, "columns for -generate")
	flips    = flag.Int("flips", 6, "bit flips between the generated pair")
	seed     = flag.Uint64("seed", 42, "seed for -generate and for the protocol coins")
	diff     = flag.Int("d", 0, "known bound on flipped bits (0 = unknown, runs the estimator variant)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dbsync [flags] A.db B.db")
		flag.PrintDefaults()
		os.Exit(2)
	}
	pathA, pathB := flag.Arg(0), flag.Arg(1)
	if *generate {
		if err := generatePair(pathA, pathB); err != nil {
			fmt.Fprintln(os.Stderr, "generate:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s and %s (%d rows x %d cols, %d bit flips apart)\n", pathA, pathB, *rows, *cols, *flips)
		return
	}
	if err := reconcile(pathA, pathB); err != nil {
		fmt.Fprintln(os.Stderr, "dbsync:", err)
		os.Exit(1)
	}
}

func generatePair(pathA, pathB string) error {
	db := workload.RandomDatabase(*seed, *rows, *cols, 0.4, nil)
	flipped := workload.FlipBits(db, *flips, prng.New(*seed^0xf11b5))
	if err := writeDB(pathB, db, *cols); err != nil {
		return err
	}
	return writeDB(pathA, flipped, *cols)
}

func writeDB(path string, db *workload.Database, cols int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, row := range db.Rows {
		line := make([]byte, cols)
		for i := range line {
			line[i] = '0'
		}
		for _, c := range row {
			line[c] = '1'
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return w.Flush()
}

func readDB(path string) (rowSets [][]uint64, cols int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if cols == 0 {
			cols = len(line)
		} else if len(line) != cols {
			return nil, 0, fmt.Errorf("%s: ragged row width %d (want %d)", path, len(line), cols)
		}
		var row []uint64
		for i, ch := range line {
			switch ch {
			case '1':
				row = append(row, uint64(i))
			case '0':
			default:
				return nil, 0, fmt.Errorf("%s: invalid character %q", path, ch)
			}
		}
		rowSets = append(rowSets, setutil.Canonical(row))
	}
	return rowSets, cols, sc.Err()
}

func reconcile(pathA, pathB string) error {
	a, colsA, err := readDB(pathA)
	if err != nil {
		return err
	}
	b, colsB, err := readDB(pathB)
	if err != nil {
		return err
	}
	if colsA != colsB {
		return fmt.Errorf("column counts differ: %d vs %d", colsA, colsB)
	}
	cfg := sosr.Config{
		Seed:         *seed,
		MaxChildSets: max(len(a), len(b)),
		MaxChildSize: colsA,
		Universe:     uint64(colsA),
		KnownDiff:    *diff,
	}
	res, err := sosr.ReconcileSetsOfSets(a, b, cfg)
	if err != nil {
		return err
	}
	fileBytes := len(b) * (colsA + 1)
	fmt.Printf("reconciled %s -> %s using %v: %d rows, %d columns\n", pathB, pathA, res.Protocol, len(a), colsA)
	fmt.Printf("  rows to add:    %d\n", len(res.Added))
	fmt.Printf("  rows to remove: %d\n", len(res.Removed))
	fmt.Printf("  wire bytes:     %d (vs %d to ship the whole file) in %d round(s)\n",
		res.Stats.TotalBytes, fileBytes, res.Stats.Rounds)
	exact := sosr.SetsOfSetsDistance(res.Recovered, a) == 0
	fmt.Printf("  verified:       %v\n", exact)
	if !exact {
		return fmt.Errorf("verification failed")
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
