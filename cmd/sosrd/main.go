// Command sosrd is the sosr reconciliation daemon and its client: a server
// hosts named datasets (sets, multisets, sets of sets) loaded from a JSON
// file or generated as a demo workload, and serves concurrent one-way
// reconciliation sessions over TCP; the sync subcommand reconciles a local
// replica against a hosted dataset, printing the same protocol Stats the
// in-process library reports plus the measured wire bytes.
//
//	sosrd serve -addr :7075 -demo                 # host generated demo datasets
//	sosrd serve -addr :7075 -data datasets.json   # host datasets from a file
//	sosrd sync  -addr host:7075 -name docs -kind sos -protocol cascade -d 24 -replica replica.json
//	sosrd demo                                    # serve+sync in one process over loopback
//
// With -data-dir the hosted datasets are durable: hosting writes an atomic
// checksummed snapshot, every update is fsynced to a per-dataset WAL before
// it is acknowledged, and a restart — graceful or kill -9 — recovers the
// exact pre-crash state, replaying the WAL suffix and truncating a torn
// tail. SIGTERM snapshots everything so the next boot replays nothing:
//
//	sosrd serve -addr :7075 -data datasets.json -data-dir /var/lib/sosrd
//	sosrd serve -addr :7075 -data-dir /var/lib/sosrd   # later boots: state comes from the store
//
// Serving subcommands take an optional private ops listener exposing
// Prometheus metrics, health and readiness, dataset summaries with content
// hashes, remote admin (host/update/drop/snapshot), and pprof:
//
//	sosrd serve -addr :7075 -demo -ops-addr 127.0.0.1:7076
//	curl http://127.0.0.1:7076/metrics
//	curl -X POST -d '{"name":"ids","kind":"set","elems":[1,2,3]}' http://127.0.0.1:7076/admin/host
//
// Logs are structured (log/slog, text format, stderr); -log-level picks the
// threshold (debug, info, warn, error).
//
// Sharded deployments partition every hosted dataset across N shards with a
// deterministic topology over the address list (internal/shardmap). Shards
// are comma-separated; replicas of one shard are pipe-separated within the
// shard's entry. Each shard-serve instance keeps only the slice its shard
// owns, every replica of a shard keeps the identical slice, and shard-sync
// fans one logical reconcile out over all shards — failing over between
// replicas and optionally hedging slow ones — then merges the recovered
// shards:
//
//	sosrd shard-serve -shards 'h1:7075|h4:7075,h2:7075,h3:7075' -index 0 -replica-index 0 -data datasets.json
//	sosrd shard-serve -shards 'h1:7075|h4:7075,h2:7075,h3:7075' -index 0 -replica-index 1 -data datasets.json
//	sosrd shard-serve -shards 'h1:7075|h4:7075,h2:7075,h3:7075' -index 1 -data datasets.json
//	sosrd shard-serve -shards 'h1:7075|h4:7075,h2:7075,h3:7075' -index 2 -data datasets.json
//	sosrd shard-sync  -shards 'h1:7075|h4:7075,h2:7075,h3:7075' -name docs -kind sos -d 24 -replica replica.json
//
// Every instance receives the same -shards list and the full logical
// datasets; shard identity is canonical (order-insensitive), ownership
// filtering is deterministic, so the instances agree on the partition
// without talking to each other, and sessions carrying wrong shard
// coordinates or a stale -epoch are rejected at the handshake.
//
// The datasets file maps names to data:
//
//	{"datasets": [
//	  {"name": "ids",  "kind": "set",      "elems": [1, 2, 3]},
//	  {"name": "bag",  "kind": "multiset", "elems": [1, 1, 2]},
//	  {"name": "docs", "kind": "sos",      "parents": [[1, 2], [3]]}
//	]}
//
// A replica file for sync holds one entry of the matching kind.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"sosr"
	"sosr/internal/obs"
	"sosr/internal/shardmap"
	"sosr/internal/store"
	"sosr/internal/workload"
	"sosr/sosrnet"
	"sosr/sosrshard"
)

// logger is the process-wide structured logger; serving subcommands replace
// it once -log-level is parsed.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// fatal logs an Error record and exits.
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// setLogLevel rebuilds the process logger at the named threshold.
func setLogLevel(level string) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		fatal("bad -log-level", "level", level, "err", err.Error())
	}
	logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "sync":
		cmdSync(os.Args[2:])
	case "shard-serve":
		cmdShardServe(os.Args[2:])
	case "shard-sync":
		cmdShardSync(os.Args[2:])
	case "demo":
		cmdDemo()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sosrd serve       [-addr :7075] [-config file.json] [-demo | -data file.json] [-data-dir dir] [-max-sessions N] [-ops-addr 127.0.0.1:7076] [-admin-token T] [-trace-sample 0.1] [-trace-slow 250ms] [-trace-ring N] [-log-level info]
  sosrd sync        -addr host:7075 -name NAME -kind set|multiset|sos [flags]
  sosrd shard-serve -shards 'a:7075|a2:7075,b:7075,...' -index I [-replica-index J] [-epoch E] [-listen addr] [-stall 0s] [-demo | -data file.json] [-data-dir dir] [-ops-addr addr] [-admin-token T] [-trace-sample R] [-trace-slow D] [-trace-ring N] [-log-level info]
  sosrd shard-sync  -shards 'a:7075|a2:7075,b:7075,...' -name NAME -kind set|multiset|sos [-epoch E] [-hedge 0s] [-per-shard-d] [-trace] [-dump-metrics] [flags]
  sosrd demo`)
	os.Exit(2)
}

// fileDataset is one entry of the -data / -replica JSON format.
type fileDataset struct {
	Name    string     `json:"name"`
	Kind    string     `json:"kind"`
	Elems   []uint64   `json:"elems,omitempty"`
	Parents [][]uint64 `json:"parents,omitempty"`
}

type datasetsFile struct {
	Datasets []fileDataset `json:"datasets"`
}

func loadDatasets(path string) ([]fileDataset, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f datasetsFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return f.Datasets, nil
}

func hostDataset(srv *sosrnet.Server, d fileDataset) error {
	switch sosrnet.Kind(d.Kind) {
	case sosrnet.KindSet:
		return srv.HostSets(d.Name, d.Elems)
	case sosrnet.KindMultiset:
		return srv.HostMultiset(d.Name, d.Elems)
	case sosrnet.KindSetsOfSets:
		return srv.HostSetsOfSets(d.Name, d.Parents)
	default:
		return fmt.Errorf("dataset %q: unsupported kind %q", d.Name, d.Kind)
	}
}

// demoData returns the generated demo pair: the hosted side and a perturbed
// replica (what a demo client would hold).
func demoData() (hosted, replica fileDataset) {
	alice, bob := workload.PlantedSetsOfSets(17, 120, 10, 1<<32, 20)
	return fileDataset{Name: "docs", Kind: "sos", Parents: alice},
		fileDataset{Name: "docs", Kind: "sos", Parents: bob}
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "", "listen address (default :7075)")
	configPath := fs.String("config", "", "JSON config file; explicit flags override its values")
	data := fs.String("data", "", "datasets JSON file")
	demo := fs.Bool("demo", false, "host a generated demo sets-of-sets dataset named \"docs\"")
	dataDir := fs.String("data-dir", "", "durable store directory: snapshots + WAL, crash recovery on boot, snapshot on SIGTERM")
	maxSessions := fs.Int("max-sessions", 0, "concurrent session cap; excess hellos get the busy error (0 = unlimited)")
	opsAddr := fs.String("ops-addr", "", "private ops listener address (/metrics, /healthz, /readyz, /datasets, /admin/*, /debug/*); empty disables")
	adminToken := fs.String("admin-token", "", "bearer token required on /admin/* and /debug/* ops routes (empty = open)")
	traceSample := fs.Float64("trace-sample", 0, "probability a session starts a server-rooted trace, 0..1 (client-opened traces are always recorded)")
	traceSlow := fs.Duration("trace-slow", 0, "capture traces slower than this in the flagged ring (0 disables slow capture)")
	traceRing := fs.Int("trace-ring", 0, "retained traces per ring, recent and flagged separately (0 = 256)")
	logLevel := fs.String("log-level", "", "log threshold: debug, info, warn, error (default info)")
	fs.Parse(args)

	cfg := &serverConfig{}
	if *configPath != "" {
		var err error
		if cfg, err = loadServerConfig(*configPath); err != nil {
			fatal("loading config failed", "err", err.Error())
		}
	}
	cfg.Addr = pick(*addr, pick(cfg.Addr, ":7075"))
	cfg.OpsAddr = pick(*opsAddr, cfg.OpsAddr)
	cfg.DataDir = pick(*dataDir, cfg.DataDir)
	cfg.LogLevel = pick(*logLevel, pick(cfg.LogLevel, "info"))
	cfg.Ops.AdminToken = pick(*adminToken, cfg.Ops.AdminToken)
	if *maxSessions > 0 {
		cfg.MaxSessions = *maxSessions
	}
	if *traceSample > 0 {
		cfg.Trace.Sample = *traceSample
	}
	if *traceRing > 0 {
		cfg.Trace.Ring = *traceRing
	}
	setLogLevel(cfg.LogLevel)

	srv := sosrnet.NewServer()
	srv.Logger = logger
	srv.MaxConcurrentSessions = cfg.MaxSessions
	srv.AdminToken = cfg.Ops.AdminToken
	srv.Trace = newTracer(cfg.Trace, *traceSlow)
	st := openStore(srv, cfg)

	sets := cfg.Datasets
	switch {
	case *demo:
		hosted, _ := demoData()
		sets = []fileDataset{hosted}
	case *data != "":
		var err error
		if sets, err = loadDatasets(*data); err != nil {
			fatal("loading datasets failed", "err", err.Error())
		}
	}
	if len(sets) == 0 && cfg.DataDir == "" {
		fatal("serve: pass -demo, -data file.json, datasets in -config, or -data-dir with persisted state")
	}
	for _, d := range sets {
		if _, err := srv.DatasetVersion(d.Name); err == nil {
			logger.Info("dataset already recovered from the store; file copy ignored", "dataset", d.Name)
			continue
		}
		if err := hostDataset(srv, d); err != nil {
			fatal("hosting dataset failed", "dataset", d.Name, "err", err.Error())
		}
		logger.Info("hosting dataset", "dataset", d.Name, "kind", d.Kind)
	}
	srv.SetReady(true)

	ops := startOps(srv, cfg.OpsAddr)
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		fatal("listen failed", "addr", cfg.Addr, "err", err.Error())
	}
	runServer(srv, ln, ops, st)
}

// newTracer builds a serving command's tracer from its knobs. The tracer is
// always non-nil — even at sample rate 0 it records traces that clients
// opened (trace context in the hello), which is how one `shard-sync -trace`
// run shows up on every shard server's /debug/traces.
func newTracer(tc traceConfig, slowFlag time.Duration) *obs.Tracer {
	slow := slowFlag
	if slow == 0 && tc.Slow != "" {
		var err error
		if slow, err = time.ParseDuration(tc.Slow); err != nil {
			fatal("bad trace.slow duration in config", "slow", tc.Slow, "err", err.Error())
		}
	}
	return &obs.Tracer{SampleRate: tc.Sample, SlowThreshold: slow, MaxTraces: tc.Ring}
}

// openStore attaches the durable store when a data dir is configured, and
// recovers whatever the previous incarnation persisted. The server stays
// not-ready until recovery (and the caller's hosting) completes.
func openStore(srv *sosrnet.Server, cfg *serverConfig) *store.Disk {
	if cfg.DataDir == "" {
		return nil
	}
	srv.SetReady(false)
	st, err := store.Open(cfg.DataDir, cfg.storeOptions())
	if err != nil {
		fatal("opening data dir failed", "dir", cfg.DataDir, "err", err.Error())
	}
	st.Observe(srv.Registry())
	srv.UseStore(st)
	rs, err := srv.Recover()
	if err != nil {
		fatal("crash recovery failed", "dir", cfg.DataDir, "err", err.Error())
	}
	logger.Info("store recovered", "dir", cfg.DataDir, "datasets", rs.Datasets,
		"replayed", rs.Replayed, "truncated_wals", rs.Truncated, "digests", rs.Digests)
	return st
}

// startOps serves the server's operational HTTP surface on its own listener.
// The ops port must stay private — pprof, dataset listings, and the admin
// mutation endpoints are not for the reconciliation peers. The returned
// server is closed during shutdown so the port is released promptly.
func startOps(srv *sosrnet.Server, addr string) *http.Server {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("ops listen failed", "addr", addr, "err", err.Error())
	}
	logger.Info("ops endpoint listening", "addr", ln.Addr().String())
	hs := &http.Server{Handler: srv.OpsHandler()}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("ops server stopped", "err", err.Error())
		}
	}()
	return hs
}

// shutdownGrace bounds the wait for in-flight sessions on SIGINT/SIGTERM
// before they are severed.
const shutdownGrace = 5 * time.Second

// runServer serves ln until SIGINT/SIGTERM, then drains: readiness drops
// first (load balancers stop routing), in-flight sessions get a grace
// period, every dataset is snapshotted so the next boot replays nothing,
// and the ops listener and store are closed.
func runServer(srv *sosrnet.Server, ln net.Listener, ops *http.Server, st *store.Disk) {
	logger.Info("sosrd listening", "addr", ln.Addr().String())
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		srv.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("sessions severed at the shutdown deadline", "err", err.Error())
		}
		if err := srv.SnapshotAll(); err != nil {
			logger.Error("shutdown snapshot failed", "err", err.Error())
		}
		if ops != nil {
			_ = ops.Close()
		}
		if st != nil {
			if err := st.Close(); err != nil {
				logger.Error("closing store failed", "err", err.Error())
			}
		}
	}()
	if err := srv.Serve(ln); err != nil {
		fatal("serve failed", "err", err.Error())
	}
	<-drained
}

// cmdShardServe hosts one shard's slice of every dataset: the instance at
// shard -index, replica -replica-index keeps the elements / child sets the
// topology assigns to its shard and rejects sessions routed for any other
// slice or carrying a different -epoch.
func cmdShardServe(args []string) {
	fs := flag.NewFlagSet("shard-serve", flag.ExitOnError)
	shards := fs.String("shards", "", "shard topology: comma-separated shards, pipe-separated replicas per shard (same on every instance)")
	index := fs.Int("index", -1, "this instance's shard position in -shards")
	replicaIdx := fs.Int("replica-index", 0, "this instance's replica position within its shard's entry")
	epoch := fs.Uint64("epoch", 0, "topology epoch; clients carrying a different epoch are told to re-resolve")
	listen := fs.String("listen", "", "listen address override (default: the -shards replica at -index/-replica-index)")
	stall := fs.Duration("stall", 0, "artificial delay before reading each accepted session (fault injection for hedging demos/tests)")
	data := fs.String("data", "", "datasets JSON file (full logical datasets; the owned slice is kept)")
	demo := fs.Bool("demo", false, "host the generated demo dataset's owned slice")
	dataDir := fs.String("data-dir", "", "durable store directory: the owned slices and shard binding persist across restarts")
	maxSessions := fs.Int("max-sessions", 0, "concurrent session cap; excess hellos get the busy error (0 = unlimited)")
	opsAddr := fs.String("ops-addr", "", "private ops listener address (/metrics, /healthz, /readyz, /datasets, /admin/*, /debug/*); empty disables")
	adminToken := fs.String("admin-token", "", "bearer token required on /admin/* and /debug/* ops routes (empty = open)")
	traceSample := fs.Float64("trace-sample", 0, "probability a session starts a server-rooted trace, 0..1 (client-opened traces are always recorded)")
	traceSlow := fs.Duration("trace-slow", 0, "capture traces slower than this in the flagged ring (0 disables slow capture)")
	traceRing := fs.Int("trace-ring", 0, "retained traces per ring, recent and flagged separately (0 = 256)")
	logLevel := fs.String("log-level", "info", "log threshold: debug, info, warn, error")
	fs.Parse(args)
	setLogLevel(*logLevel)

	topo, err := parseTopology(*shards, *epoch)
	if err != nil {
		fatal("bad -shards list", "err", err.Error())
	}
	if *index < 0 || *index >= topo.NumShards() {
		fatal("shard-serve: -index outside shard list", "index", *index, "shards", topo.NumShards())
	}
	replicas := topo.Replicas(*index)
	if *replicaIdx < 0 || *replicaIdx >= len(replicas) {
		fatal("shard-serve: -replica-index outside the shard's replica list",
			"replica_index", *replicaIdx, "replicas", len(replicas))
	}
	srv := sosrnet.NewServer()
	srv.Logger = logger.With("shard", *index, "replica", *replicaIdx)
	srv.MaxConcurrentSessions = *maxSessions
	srv.AdminToken = *adminToken
	srv.Trace = newTracer(traceConfig{Sample: *traceSample, Ring: *traceRing}, *traceSlow)
	st := openStore(srv, &serverConfig{DataDir: *dataDir})
	var sets []fileDataset
	switch {
	case *demo:
		hosted, _ := demoData()
		sets = []fileDataset{hosted}
	case *data != "":
		if sets, err = loadDatasets(*data); err != nil {
			fatal("loading datasets failed", "err", err.Error())
		}
	default:
		if *dataDir == "" {
			fatal("shard-serve: pass -demo, -data file.json, or -data-dir with persisted slices")
		}
	}
	for _, d := range sets {
		// The persisted record carries the shard binding, so a recovered
		// slice is already filtered and bound — the file copy is redundant.
		if _, err := srv.DatasetVersion(d.Name); err == nil {
			logger.Info("dataset slice already recovered from the store; file copy ignored", "dataset", d.Name)
			continue
		}
		if err := hostDatasetShard(srv, d, topo, *index); err != nil {
			fatal("hosting shard failed", "dataset", d.Name, "err", err.Error())
		}
		logger.Info("hosting dataset shard", "dataset", d.Name, "kind", d.Kind,
			"shard", *index, "shards", topo.NumShards(), "epoch", topo.Epoch())
	}
	srv.SetReady(true)
	addr := replicas[*replicaIdx]
	if *listen != "" {
		addr = *listen
	}
	ops := startOps(srv, *opsAddr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("listen failed", "addr", addr, "err", err.Error())
	}
	if *stall > 0 {
		logger.Warn("stall fault injection active", "stall", stall.String())
		ln = &stallListener{Listener: ln, delay: *stall}
	}
	runServer(srv, ln, ops, st)
}

func hostDatasetShard(srv *sosrnet.Server, d fileDataset, topo *shardmap.Topology, index int) error {
	switch sosrnet.Kind(d.Kind) {
	case sosrnet.KindSet:
		return srv.HostSetsShard(d.Name, d.Elems, topo, index)
	case sosrnet.KindMultiset:
		return srv.HostMultisetShard(d.Name, d.Elems, topo, index)
	case sosrnet.KindSetsOfSets:
		return srv.HostSetsOfSetsShard(d.Name, d.Parents, topo, index)
	default:
		return fmt.Errorf("dataset %q: unsupported sharded kind %q", d.Name, d.Kind)
	}
}

// parseTopology builds the replicated topology from the CLI syntax: shards
// separated by commas, replicas of one shard separated by pipes.
//
//	"a:7075,b:7075"            two shards, one replica each
//	"a:7075|a2:7075,b:7075"    shard 0 has two replicas
func parseTopology(list string, epoch uint64) (*shardmap.Topology, error) {
	var shards [][]string
	for _, entry := range strings.Split(list, ",") {
		if entry = strings.TrimSpace(entry); entry == "" {
			continue
		}
		var reps []string
		for _, a := range strings.Split(entry, "|") {
			if a = strings.TrimSpace(a); a != "" {
				reps = append(reps, a)
			}
		}
		shards = append(shards, reps)
	}
	return shardmap.NewTopology(epoch, shards)
}

// stallListener delays the first read of every accepted connection —
// fault injection that makes an instance a deterministic straggler so
// hedged requests measurably win.
type stallListener struct {
	net.Listener
	delay time.Duration
}

func (l *stallListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &stallConn{Conn: c, delay: l.delay}, nil
}

type stallConn struct {
	net.Conn
	delay time.Duration
	once  sync.Once
}

func (c *stallConn) Read(p []byte) (int, error) {
	c.once.Do(func() { time.Sleep(c.delay) })
	return c.Conn.Read(p)
}

// cmdShardSync fans one logical reconcile out over every shard — failing
// over between a shard's replicas and optionally hedging stragglers — and
// merges the recovered slices, printing the aggregated byte report plus the
// per-shard itemization.
func cmdShardSync(args []string) {
	fs := flag.NewFlagSet("shard-sync", flag.ExitOnError)
	shards := fs.String("shards", "", "shard topology: comma-separated shards, pipe-separated replicas per shard")
	epoch := fs.Uint64("epoch", 0, "topology epoch (must match the serving instances)")
	name := fs.String("name", "", "dataset name")
	kind := fs.String("kind", "sos", "dataset kind: set, multiset or sos")
	replica := fs.String("replica", "", "local replica JSON file (omit with -demo-replica)")
	demoReplica := fs.Bool("demo-replica", false, "use the generated demo replica (pairs with shard-serve -demo)")
	protocol := fs.String("protocol", "auto", "sets-of-sets protocol: auto, naive, nested, cascade, multiround")
	seed := fs.Uint64("seed", 42, "shared public-coin seed")
	d := fs.Int("d", 0, "known difference bound for the whole logical dataset (0 = unknown-d variant)")
	hedge := fs.Duration("hedge", 0, "straggler delay before racing a second replica of a slow shard (0 disables hedging)")
	perShardD := fs.Bool("per-shard-d", false, "drop -d per shard so each shard estimates its own difference bound")
	dumpMetrics := fs.Bool("dump-metrics", false, "print the client's Prometheus metrics (failover/hedge counters) to stdout after the sync")
	trace := fs.Bool("trace", false, "trace the sync end to end and print its trace id; every shard server records the same trace (see /debug/traces?id=...)")
	fs.Parse(args)
	if *name == "" {
		fatal("shard-sync: -name is required")
	}
	topo, err := parseTopology(*shards, *epoch)
	if err != nil {
		fatal("bad -shards list", "err", err.Error())
	}
	c, err := sosrshard.Dial(topo)
	if err != nil {
		fatal("dialing shards failed", "err", err.Error())
	}
	c.HedgeDelay = *hedge
	c.PerShardDiff = *perShardD
	c.Logger = logger
	reg := obs.NewRegistry()
	c.Obs = reg

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With -trace, root the whole sync under one always-sampled span: the
	// fan-out, every per-shard attempt, and each shard server's stage spans
	// share its trace id, printed at the end for /debug/traces?id= lookups.
	var syncSpan *obs.Span
	if *trace {
		tr := &obs.Tracer{SampleRate: 1}
		syncSpan = tr.StartRoot("shard-sync")
		ctx = obs.ContextWithSpan(ctx, syncSpan)
	}

	var local fileDataset
	switch {
	case *demoReplica:
		_, local = demoData()
	case *replica != "":
		sets, err := loadDatasets(*replica)
		if err != nil {
			fatal("loading replica failed", "err", err.Error())
		}
		for _, ds := range sets {
			if ds.Name == *name {
				local = ds
			}
		}
		if local.Name == "" {
			fatal("shard-sync: replica file has no such dataset", "dataset", *name)
		}
	default:
		fatal("shard-sync: pass -replica file.json or -demo-replica")
	}

	switch sosrnet.Kind(*kind) {
	case sosrnet.KindSet:
		res, st, err := c.Sets(ctx, *name, local.Elems, sosr.SetConfig{Seed: *seed, KnownDiff: *d})
		if err != nil {
			fatal("shard-sync failed", "err", err.Error())
		}
		fmt.Printf("recovered %d elements (+%d -%d) across %d shards\n",
			len(res.Recovered), len(res.OnlyA), len(res.OnlyB), topo.NumShards())
		printShardStats(st)
	case sosrnet.KindMultiset:
		rec, st, err := c.Multiset(ctx, *name, local.Elems, *d, *seed)
		if err != nil {
			fatal("shard-sync failed", "err", err.Error())
		}
		fmt.Printf("recovered %d multiset elements across %d shards\n", len(rec), topo.NumShards())
		printShardStats(st)
	case sosrnet.KindSetsOfSets:
		res, st, err := c.SetsOfSets(ctx, *name, local.Parents, sosr.Config{
			Seed: *seed, Protocol: parseProtocolFlag(*protocol), KnownDiff: *d,
		})
		if err != nil {
			fatal("shard-sync failed", "err", err.Error())
		}
		fmt.Printf("recovered %d child sets (+%d -%d) via %v across %d shards\n",
			len(res.Recovered), len(res.Added), len(res.Removed), res.Protocol, topo.NumShards())
		printShardStats(st)
	default:
		fatal("shard-sync: unsupported kind", "kind", *kind)
	}
	if syncSpan != nil {
		syncSpan.Finish()
		fmt.Printf("trace: id=%s\n", syncSpan.TraceID())
	}
	if *dumpMetrics {
		if err := reg.WriteProm(os.Stdout); err != nil {
			fatal("dumping metrics failed", "err", err.Error())
		}
	}
}

func printShardStats(st *sosrshard.Stats) {
	fmt.Printf("protocol: bytes=%d (server=%d client=%d) msgs=%d attempts=%d\n",
		st.Protocol.TotalBytes, st.Protocol.AliceBytes, st.Protocol.BobBytes, st.Protocol.Messages, st.Attempts)
	fmt.Printf("wire:     in=%dB out=%dB overhead=%dB (TCP total %dB = protocol + framing)\n",
		st.WireIn, st.WireOut, st.Overhead, st.WireIn+st.WireOut)
	if st.Failovers > 0 || st.Hedges > 0 {
		fmt.Printf("replicas: failovers=%d hedges=%d hedge-wins=%d\n",
			st.Failovers, st.Hedges, st.HedgeWins)
	}
	for _, sh := range st.Shards {
		fmt.Printf("  shard %d via %-21s bytes=%-6d overhead=%-4d sessions=%d attempts=%d\n",
			sh.Index, sh.Replica, sh.Net.Protocol.TotalBytes, sh.Net.Overhead, sh.Attempts, sh.Net.Attempts)
	}
}

func cmdSync(args []string) {
	fs := flag.NewFlagSet("sync", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7075", "server address")
	name := fs.String("name", "", "dataset name")
	kind := fs.String("kind", "sos", "dataset kind: set, multiset or sos")
	replica := fs.String("replica", "", "local replica JSON file (omit with -demo-replica)")
	demoReplica := fs.Bool("demo-replica", false, "use the generated demo replica (pairs with serve -demo)")
	protocol := fs.String("protocol", "auto", "sets-of-sets protocol: auto, naive, nested, cascade, multiround")
	seed := fs.Uint64("seed", 42, "shared public-coin seed (must match across runs to be comparable)")
	d := fs.Int("d", 0, "known difference bound (0 = unknown-d variant)")
	charpoly := fs.Bool("charpoly", false, "set kind: use the characteristic-polynomial protocol")
	fs.Parse(args)
	if *name == "" {
		fatal("sync: -name is required")
	}

	var local fileDataset
	switch {
	case *demoReplica:
		_, local = demoData()
	case *replica != "":
		sets, err := loadDatasets(*replica)
		if err != nil {
			fatal("loading replica failed", "err", err.Error())
		}
		for _, ds := range sets {
			if ds.Name == *name {
				local = ds
			}
		}
		if local.Name == "" {
			fatal("sync: replica file has no such dataset", "dataset", *name)
		}
	default:
		fatal("sync: pass -replica file.json or -demo-replica")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := sosrnet.Dial(*addr)
	switch sosrnet.Kind(*kind) {
	case sosrnet.KindSet:
		res, ns, err := c.Sets(ctx, *name, local.Elems, sosr.SetConfig{Seed: *seed, KnownDiff: *d, UseCharPoly: *charpoly})
		if err != nil {
			fatal("sync failed", "err", err.Error())
		}
		fmt.Printf("recovered %d elements (+%d -%d)\n", len(res.Recovered), len(res.OnlyA), len(res.OnlyB))
		printStats(ns)
	case sosrnet.KindMultiset:
		rec, ns, err := c.Multiset(ctx, *name, local.Elems, *d, *seed)
		if err != nil {
			fatal("sync failed", "err", err.Error())
		}
		fmt.Printf("recovered %d multiset elements\n", len(rec))
		printStats(ns)
	case sosrnet.KindSetsOfSets:
		res, ns, err := c.SetsOfSets(ctx, *name, local.Parents, sosr.Config{
			Seed: *seed, Protocol: parseProtocolFlag(*protocol), KnownDiff: *d,
		})
		if err != nil {
			fatal("sync failed", "err", err.Error())
		}
		fmt.Printf("recovered %d child sets (+%d -%d) via %v in %d attempt(s)\n",
			len(res.Recovered), len(res.Added), len(res.Removed), res.Protocol, res.Attempts)
		printStats(ns)
	default:
		fatal("sync: unsupported kind", "kind", *kind)
	}
}

func parseProtocolFlag(s string) sosr.Protocol {
	switch s {
	case "naive":
		return sosr.ProtocolNaive
	case "nested":
		return sosr.ProtocolNested
	case "cascade":
		return sosr.ProtocolCascade
	case "multiround":
		return sosr.ProtocolMultiRound
	default:
		return sosr.ProtocolAuto
	}
}

func printStats(ns *sosrnet.NetStats) {
	fmt.Printf("protocol: rounds=%d bytes=%d (server=%d client=%d) msgs=%d\n",
		ns.Protocol.Rounds, ns.Protocol.TotalBytes, ns.Protocol.AliceBytes, ns.Protocol.BobBytes, ns.Protocol.Messages)
	fmt.Printf("wire:     in=%dB out=%dB overhead=%dB\n", ns.WireIn, ns.WireOut, ns.Overhead)
}

// cmdDemo runs server and client in one process over loopback: the fastest
// proof that the hosted data travels as exactly the bytes the paper's
// accounting predicts.
func cmdDemo() {
	hosted, replica := demoData()
	srv := sosrnet.NewServer()
	srv.Logger = logger
	if err := hostDataset(srv, hosted); err != nil {
		fatal("hosting demo dataset failed", "err", err.Error())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("listen failed", "err", err.Error())
	}
	go srv.Serve(ln)
	defer func() {
		// Graceful: let the server finish reading the session's closing
		// report (and log it) before tearing down.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	logger.Info("demo server listening", "addr", ln.Addr().String())

	cfg := sosr.Config{Seed: 42, Protocol: sosr.ProtocolCascade, KnownDiff: 40}
	want, err := sosr.ReconcileSetsOfSets(hosted.Parents, replica.Parents, cfg)
	if err != nil {
		fatal("in-process reconcile failed", "err", err.Error())
	}
	res, ns, err := sosrnet.Dial(ln.Addr().String()).SetsOfSets(context.Background(), "docs", replica.Parents, cfg)
	if err != nil {
		fatal("demo sync failed", "err", err.Error())
	}
	fmt.Printf("recovered %d child sets (+%d added, -%d removed) over TCP\n",
		len(res.Recovered), len(res.Added), len(res.Removed))
	printStats(ns)
	fmt.Printf("in-process simulation predicts %d payload bytes; the wire moved %d payload bytes (+%dB framing)\n",
		want.Stats.TotalBytes, ns.Protocol.TotalBytes, ns.Overhead)
	if want.Stats.TotalBytes == ns.Protocol.TotalBytes {
		fmt.Println("byte-exact: two real machines exchange exactly the bytes the paper's accounting predicts")
	} else {
		fatal("wire payload diverged from the in-process prediction")
	}
}
