package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"sosr/internal/store"
)

// walConfig tunes the durable store's write-ahead log.
type walConfig struct {
	// CompactBytes is the WAL size past which a dataset is folded into a
	// fresh snapshot (0 = the store default).
	CompactBytes int64 `json:"compact_bytes,omitempty"`
	// NoSync drops the fsync after every append and snapshot. Faster, and an
	// OS crash may then lose acknowledged updates — fine for replicas whose
	// truth lives elsewhere, wrong for a primary.
	NoSync bool `json:"no_sync,omitempty"`
}

// serverConfig is the sosrd serve -config file: the same knobs as the
// flags, plus datasets to host inline. Explicit flags override file values.
//
//	{
//	  "addr": ":7075",
//	  "ops_addr": "127.0.0.1:7076",
//	  "data_dir": "/var/lib/sosrd",
//	  "log_level": "info",
//	  "max_sessions": 256,
//	  "wal": {"compact_bytes": 4194304},
//	  "datasets": [{"name": "ids", "kind": "set", "elems": [1, 2, 3]}]
//	}
type serverConfig struct {
	Addr        string        `json:"addr,omitempty"`
	OpsAddr     string        `json:"ops_addr,omitempty"`
	DataDir     string        `json:"data_dir,omitempty"`
	LogLevel    string        `json:"log_level,omitempty"`
	MaxSessions int           `json:"max_sessions,omitempty"`
	WAL         walConfig     `json:"wal,omitempty"`
	Datasets    []fileDataset `json:"datasets,omitempty"`
}

// loadServerConfig reads and decodes a config file; unknown fields are
// rejected so a typoed knob fails loudly instead of silently defaulting.
func loadServerConfig(path string) (*serverConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg serverConfig
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &cfg, nil
}

// storeOptions renders the WAL knobs as store options.
func (c *serverConfig) storeOptions() store.Options {
	return store.Options{CompactBytes: c.WAL.CompactBytes, NoSync: c.WAL.NoSync, Logger: logger}
}

// pick returns flagVal when non-zero, else fileVal: the flag-over-config
// precedence for string knobs.
func pick(flagVal, fileVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return fileVal
}
