package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"sosr/internal/store"
)

// walConfig tunes the durable store's write-ahead log.
type walConfig struct {
	// CompactBytes is the WAL size past which a dataset is folded into a
	// fresh snapshot (0 = the store default).
	CompactBytes int64 `json:"compact_bytes,omitempty"`
	// NoSync drops the fsync after every append and snapshot. Faster, and an
	// OS crash may then lose acknowledged updates — fine for replicas whose
	// truth lives elsewhere, wrong for a primary.
	NoSync bool `json:"no_sync,omitempty"`
}

// opsConfig tunes the privileged half of the ops listener.
type opsConfig struct {
	// AdminToken, when set, gates every /admin/* and /debug/* route behind
	// `Authorization: Bearer <token>`; /metrics, /healthz, /readyz, and
	// /datasets stay open for scrapers and probes.
	AdminToken string `json:"admin_token,omitempty"`
}

// traceConfig tunes distributed session tracing.
type traceConfig struct {
	// Sample is the probability (0..1) that a server-rooted session starts a
	// trace. Traces a client opened (trace context in the hello) are always
	// recorded regardless of this rate.
	Sample float64 `json:"sample,omitempty"`
	// Slow is a duration ("250ms"); traces slower than it are captured in
	// the flagged ring even when the recent ring has moved on.
	Slow string `json:"slow,omitempty"`
	// Ring bounds the retained traces per ring, recent and flagged
	// separately (0 = 256).
	Ring int `json:"ring,omitempty"`
}

// serverConfig is the sosrd serve -config file: the same knobs as the
// flags, plus datasets to host inline. Explicit flags override file values.
//
//	{
//	  "addr": ":7075",
//	  "ops_addr": "127.0.0.1:7076",
//	  "data_dir": "/var/lib/sosrd",
//	  "log_level": "info",
//	  "max_sessions": 256,
//	  "wal": {"compact_bytes": 4194304},
//	  "ops": {"admin_token": "s3cret"},
//	  "trace": {"sample": 0.1, "slow": "250ms", "ring": 512},
//	  "datasets": [{"name": "ids", "kind": "set", "elems": [1, 2, 3]}]
//	}
type serverConfig struct {
	Addr        string        `json:"addr,omitempty"`
	OpsAddr     string        `json:"ops_addr,omitempty"`
	DataDir     string        `json:"data_dir,omitempty"`
	LogLevel    string        `json:"log_level,omitempty"`
	MaxSessions int           `json:"max_sessions,omitempty"`
	WAL         walConfig     `json:"wal,omitempty"`
	Ops         opsConfig     `json:"ops,omitempty"`
	Trace       traceConfig   `json:"trace,omitempty"`
	Datasets    []fileDataset `json:"datasets,omitempty"`
}

// loadServerConfig reads and decodes a config file; unknown fields are
// rejected so a typoed knob fails loudly instead of silently defaulting.
func loadServerConfig(path string) (*serverConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg serverConfig
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &cfg, nil
}

// storeOptions renders the WAL knobs as store options.
func (c *serverConfig) storeOptions() store.Options {
	return store.Options{CompactBytes: c.WAL.CompactBytes, NoSync: c.WAL.NoSync, Logger: logger}
}

// pick returns flagVal when non-zero, else fileVal: the flag-over-config
// precedence for string knobs.
func pick(flagVal, fileVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return fileVal
}
