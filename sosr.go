// Package sosr is a Go implementation of "Reconciling Graphs and Sets of
// Sets" (Mitzenmacher & Morgan, PODS 2018): one-way reconciliation protocols
// that let a party holding a slightly different copy of structured data —
// a set, a set of sets, an unlabeled graph, or a rooted forest — recover the
// other party's data with communication proportional to the difference, not
// the data size.
//
// The top-level entry points are:
//
//   - ReconcileSets / ReconcileMultisets — classic set reconciliation
//     (IBLT-based, Corollary 2.2/3.2; characteristic-polynomial based,
//     Theorem 2.3).
//   - ReconcileSetsOfSets — the paper's primary contribution, with four
//     selectable protocols (Theorems 3.3, 3.5, 3.7, 3.9 and their unknown-d
//     variants).
//   - ReconcileGraphs / GraphsIsomorphic — random-graph reconciliation via
//     the degree-ordering (§5.1) or degree-neighborhood (§5.2) signature
//     schemes, plus the exponential tiny-graph protocols of §4.
//   - ReconcileForests — rooted-forest reconciliation (§6).
//
// All protocols are one-way: "Bob" (the second argument) ends up with
// "Alice's" data. They simulate both parties in-process while forcing every
// cross-party byte through a measured transport, so the Stats on each result
// are honest serialized-communication numbers. Both parties share public
// coins derived from Config.Seed; two real machines running this code with
// the same seed and parameters would exchange exactly the recorded bytes.
//
// Elements are uint64 values below 2^60 (the universe embeds into
// GF(2^61−1) with reserved space for the characteristic-polynomial
// evaluation points).
package sosr

import (
	"sosr/internal/transport"
)

// MaxElement is the largest allowed universe element (2^60 - 1).
const MaxElement uint64 = 1<<60 - 1

// Stats summarizes a protocol run's communication. Rounds counts messages,
// with consecutive same-sender messages merged (the paper's "in parallel"
// convention); bytes are fully-serialized wire sizes.
type Stats struct {
	Rounds     int
	TotalBytes int
	AliceBytes int
	BobBytes   int
	Messages   int
}

func statsFrom(st transport.Stats) Stats {
	return Stats{
		Rounds:     st.Rounds,
		TotalBytes: st.TotalBytes,
		AliceBytes: st.AliceBytes,
		BobBytes:   st.BobBytes,
		Messages:   st.Messages,
	}
}
