package sosr

// Ablation benchmarks for the design choices DESIGN.md calls out: the IBLT
// hash count k, the cell-count constant, the cascade's level structure vs a
// single-level nested table, estimator parameterization, and the naive
// protocol's bitmap-vs-list encoding switch.

import (
	"fmt"
	"testing"

	"sosr/internal/core"
	"sosr/internal/estimator"
	"sosr/internal/hashing"
	"sosr/internal/iblt"
	"sosr/internal/prng"
	"sosr/internal/transport"
)

// BenchmarkAblationIBLTHashCount sweeps k (hash functions per key): k=4 is
// the default; k=3 peels at lower density but fails more at small sizes,
// k=5 costs more updates for little gain.
func BenchmarkAblationIBLTHashCount(b *testing.B) {
	const d = 64
	for _, k := range []int{3, 4, 5} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			src := prng.New(uint64(k))
			success := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := iblt.NewUint64(iblt.CellsFor(d), k, src.Uint64())
				for j := 0; j < d; j++ {
					t.InsertUint64(src.Uint64())
				}
				if _, _, err := t.Decode(); err == nil {
					success++
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(success)/float64(b.N), "success-rate")
		})
	}
}

// BenchmarkAblationIBLTCells sweeps the cells-per-difference constant that
// CellsFor fixes at 2.0: the wire-bytes vs success-rate trade (E3's table in
// benchmark form).
func BenchmarkAblationIBLTCells(b *testing.B) {
	const d = 64
	for _, ratio := range []float64{1.3, 1.6, 2.0, 3.0} {
		ratio := ratio
		b.Run(fmt.Sprintf("ratio=%.1f", ratio), func(b *testing.B) {
			src := prng.New(7)
			cells := int(float64(d) * ratio)
			success := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := iblt.NewUint64(cells, 0, src.Uint64())
				for j := 0; j < d; j++ {
					t.InsertUint64(src.Uint64())
				}
				if _, _, err := t.Decode(); err == nil {
					success++
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(success)/float64(b.N), "success-rate")
			b.ReportMetric(float64(iblt.SerializedSizeFor(cells, 8, 0)), "wire-B")
		})
	}
}

// BenchmarkAblationEstimatorParams sweeps sketch parameters: replica count
// (median amplification) and bucket count per subroutine.
func BenchmarkAblationEstimatorParams(b *testing.B) {
	const d = 512
	configs := []estimator.Params{
		{Replicas: 1, Buckets: 63},
		{Replicas: 3, Buckets: 63},
		{Replicas: 5, Buckets: 63},
		{Replicas: 3, Buckets: 126},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(fmt.Sprintf("rep=%d/buckets=%d", cfg.Replicas, cfg.Buckets), func(b *testing.B) {
			src := prng.New(3)
			var errSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := estimator.New(cfg, uint64(i))
				for k := 0; k < d; k++ {
					side := estimator.SideA
					if k%2 == 1 {
						side = estimator.SideB
					}
					e.Add(src.Uint64(), side)
				}
				est := float64(e.Estimate())
				ratio := est / d
				if ratio < 1 {
					ratio = 1 / ratio
				}
				errSum += ratio
			}
			b.StopTimer()
			b.ReportMetric(errSum/float64(b.N), "geo-error-x")
			b.ReportMetric(float64(estimator.New(cfg, 0).SerializedSize()), "wire-B")
		})
	}
}

// BenchmarkAblationCascadeVsSingleLevel isolates what the cascade buys: the
// same instance run through Algorithm 2 and through Algorithm 1 with the
// cascade's total budget, at growing d.
func BenchmarkAblationCascadeVsSingleLevel(b *testing.B) {
	for _, d := range []int{8, 32} {
		d := d
		alice, bob, p := table1Instance(uint64(d)*7+5, table1Shape{s: 64, h: 64}, d)
		for _, mode := range []string{"cascade", "single-level"} {
			mode := mode
			b.Run(fmt.Sprintf("%s/d=%d", mode, d), func(b *testing.B) {
				coins := hashing.NewCoins(uint64(d) + 77)
				var bytes, fails int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sess := transport.New()
					var err error
					if mode == "cascade" {
						_, err = core.CascadeKnownD(sess, coins.Sub("i", i), alice, bob, p, d)
					} else {
						_, err = core.NestedKnownD(sess, coins.Sub("i", i), alice, bob, p, d, core.DHat(d, p.S))
					}
					if err != nil {
						fails++ // protocols fail with probability 1/poly(d) by design
					}
					bytes += sess.TotalBytes()
				}
				b.StopTimer()
				b.ReportMetric(float64(bytes)/float64(b.N), "wire-B")
				b.ReportMetric(float64(fails)/float64(b.N), "failures")
			})
		}
	}
}

// BenchmarkAblationNaiveEncoding compares the naive protocol's two child
// encodings (bitmap vs element list) at the same instance shape, by varying
// only the declared universe.
func BenchmarkAblationNaiveEncoding(b *testing.B) {
	const d = 4
	for _, mode := range []string{"bitmap", "list"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			// 64-column rows; bitmap = 8B/child, list = 4+8·64B/child.
			alice, bob, p := table1Instance(11, table1Shape{s: 32, h: 64}, d)
			if mode == "list" {
				p.U = 1 << 40 // huge universe forces the list encoding
			}
			coins := hashing.NewCoins(13)
			var bytes, fails int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess := transport.New()
				if _, err := core.NaiveKnownD(sess, coins.Sub("i", i), alice, bob, p, core.DHat(d, p.S)); err != nil {
					fails++
				}
				bytes += sess.TotalBytes()
			}
			b.StopTimer()
			b.ReportMetric(float64(bytes)/float64(b.N), "wire-B")
			b.ReportMetric(float64(fails)/float64(b.N), "failures")
		})
	}
}

// BenchmarkDepth3 measures the future-work depth-3 recursion.
func BenchmarkDepth3(b *testing.B) {
	alice, bob := depth3Instance(21, 6, 8, 12, 4)
	d := core.Distance3(alice, bob)
	coins := hashing.NewCoins(23)
	var bytes, fails int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := transport.New()
		if _, err := core.Nested3KnownD(sess, coins.Sub("i", i), alice, bob,
			core.Params3{G: 6, S: 8, H: 12}, core.Bounds3{D: d}); err != nil {
			fails++
		}
		bytes += sess.TotalBytes()
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes)/float64(b.N), "wire-B")
	b.ReportMetric(float64(fails)/float64(b.N), "failures")
}

// depth3Instance plants a grandparent pair (mirrors the core test helper).
func depth3Instance(seed uint64, g, s, h, d int) (alice, bob [][][]uint64) {
	src := prng.New(seed)
	used := map[uint64]bool{}
	next := func() uint64 {
		for {
			x := src.Uint64() % (1 << 40)
			if !used[x] {
				used[x] = true
				return x
			}
		}
	}
	bob = make([][][]uint64, g)
	for gi := range bob {
		bob[gi] = make([][]uint64, s)
		for si := range bob[gi] {
			var cs []uint64
			for j := 0; j < h/2+src.Intn(h/2+1); j++ {
				cs = append(cs, next())
			}
			bob[gi][si] = canonical(cs)
		}
	}
	alice = make([][][]uint64, g)
	for gi := range bob {
		alice[gi] = make([][]uint64, s)
		for si := range bob[gi] {
			alice[gi][si] = append([]uint64(nil), bob[gi][si]...)
		}
	}
	for e := 0; e < d; e++ {
		gi, si := src.Intn(g), src.Intn(s)
		alice[gi][si] = canonical(append(append([]uint64(nil), alice[gi][si]...), next()))
	}
	return alice, bob
}

func canonical(xs []uint64) []uint64 {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}
