package sosr

import (
	"errors"

	"sosr/internal/hashing"
	"sosr/internal/setrecon"
	"sosr/internal/setutil"
	"sosr/internal/transport"
)

// errCharPolyNeedsBound rejects UseCharPoly without a difference bound
// (Theorem 2.3 is a known-d protocol; compose with an estimator otherwise).
var errCharPolyNeedsBound = errors.New("sosr: UseCharPoly requires KnownDiff > 0")

// SetConfig configures one-level set reconciliation.
type SetConfig struct {
	// Seed seeds the shared public coins. Both parties must agree on it.
	Seed uint64
	// KnownDiff bounds |A ⊕ B| when positive; when 0 the two-round
	// estimator-based protocol runs instead (Corollary 3.2).
	KnownDiff int
	// UseCharPoly selects the characteristic-polynomial protocol of
	// Theorem 2.3 (probability-1 success, O(n·d + d³) time) instead of the
	// IBLT protocol of Corollary 2.2. Requires KnownDiff > 0.
	UseCharPoly bool
}

// SetResult reports a one-way set reconciliation: Recovered is Bob's copy of
// Alice's set; OnlyA and OnlyB are the decoded difference.
type SetResult struct {
	Recovered    []uint64
	OnlyA, OnlyB []uint64
	Stats        Stats
}

// ReconcileSets runs one-way set reconciliation: given Alice's and Bob's
// sets (any order, duplicates ignored), Bob recovers Alice's set. See
// SetConfig for protocol selection.
func ReconcileSets(alice, bob []uint64, cfg SetConfig) (*SetResult, error) {
	a, b := setutil.Canonical(alice), setutil.Canonical(bob)
	sess := transport.New()
	coins := hashing.NewCoins(cfg.Seed)
	var res *setrecon.Result
	var err error
	switch {
	case cfg.UseCharPoly:
		if cfg.KnownDiff <= 0 {
			return nil, errCharPolyNeedsBound
		}
		res, err = setrecon.CharPoly(sess, coins, a, b, cfg.KnownDiff)
	case cfg.KnownDiff > 0:
		res, err = setrecon.IBLTKnownD(sess, coins, a, b, cfg.KnownDiff)
	default:
		res, err = setrecon.IBLTUnknownD(sess, coins, a, b)
	}
	if err != nil {
		return nil, err
	}
	return &SetResult{
		Recovered: res.Recovered,
		OnlyA:     res.OnlyA,
		OnlyB:     res.OnlyB,
		Stats:     statsFrom(res.Stats),
	}, nil
}

// ReconcileMultisets reconciles multisets (slices with repeats) via the
// §3.4 (element, count) packing. diffBound bounds the packed-set difference;
// pass 2× the multiset edit distance when converting a multiset bound.
// Elements must be < 2^48 with per-element multiplicity < 2^12.
func ReconcileMultisets(alice, bob []uint64, diffBound int, seed uint64) ([]uint64, Stats, error) {
	sess := transport.New()
	recovered, res, err := setrecon.MultisetKnownD(sess, hashing.NewCoins(seed), alice, bob, diffBound)
	if err != nil {
		return nil, Stats{}, err
	}
	return recovered, statsFrom(res.Stats), nil
}

// SetDifference returns |a ⊕ b| computed locally (ground truth for sizing
// and experiments, not a protocol).
func SetDifference(a, b []uint64) int {
	return setutil.SymmetricDiff(setutil.Canonical(a), setutil.Canonical(b))
}
