package sosr

import (
	"fmt"

	"sosr/internal/core"
	"sosr/internal/hashing"
	"sosr/internal/transport"
)

// Protocol selects a sets-of-sets reconciliation algorithm (§3, Table 1).
type Protocol int

// The four protocol families of the paper.
const (
	// ProtocolAuto picks Cascade for known d and MultiRound for unknown d —
	// the communication-optimal defaults from Table 1.
	ProtocolAuto Protocol = iota
	// ProtocolNaive treats child sets as opaque items (Theorems 3.3/3.4):
	// simplest and fastest, O(d̂·min(h log u, u)) bits.
	ProtocolNaive
	// ProtocolNested is Algorithm 1, IBLTs of IBLTs (Theorem 3.5 /
	// Corollary 3.6): O(d̂·d log u + d̂ log s) bits in one round.
	ProtocolNested
	// ProtocolCascade is Algorithm 2, cascading IBLTs of IBLTs (Theorem 3.7
	// / Corollary 3.8): O(d log min(d,h) log u + d log s) bits in one round.
	ProtocolCascade
	// ProtocolMultiRound is the 3/4-round protocol (Theorems 3.9/3.10):
	// least communication for large h, at the cost of extra rounds.
	ProtocolMultiRound
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolAuto:
		return "auto"
	case ProtocolNaive:
		return "naive"
	case ProtocolNested:
		return "nested"
	case ProtocolCascade:
		return "cascade"
	case ProtocolMultiRound:
		return "multiround"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// Config configures sets-of-sets reconciliation. MaxChildSets (s) and
// MaxChildSize (h) describe the instance shape both parties agree on.
type Config struct {
	// Seed seeds the shared public coins.
	Seed uint64
	// MaxChildSets is s, the maximum number of child sets per parent.
	MaxChildSets int
	// MaxChildSize is h, the maximum elements per child set.
	MaxChildSize int
	// Universe is u; elements lie in [0, Universe). 0 means the full 2^60
	// range. Small universes let the naive protocol use bitmap encodings.
	Universe uint64
	// Protocol selects the algorithm; see the Protocol constants.
	Protocol Protocol
	// KnownDiff bounds d, the total element differences under the minimum
	// difference matching. 0 runs the unknown-d variant (estimators or
	// repeated doubling, per protocol).
	KnownDiff int
	// KnownChildDiff optionally bounds d̂, the number of differing child
	// sets; 0 derives min(d, s).
	KnownChildDiff int
	// Replicas amplifies known-d runs by replication with fresh coins
	// (§3.2); 0 means 3. Each failed attempt re-transmits, and all attempts
	// count toward Stats.
	Replicas int
	// Validate rejects malformed inputs (non-canonical or duplicate child
	// sets, bound violations) before running. Costs one pass over the data.
	Validate bool
}

// Result reports a one-way sets-of-sets reconciliation.
type Result struct {
	// Recovered is Bob's reconstruction of Alice's parent set, child sets in
	// canonical order.
	Recovered [][]uint64
	// Added are Alice's child sets Bob lacked; Removed are Bob's child sets
	// Alice lacked.
	Added, Removed [][]uint64
	// Stats covers all attempts, including retries.
	Stats Stats
	// Attempts counts protocol attempts (replication or doubling).
	Attempts int
	// Protocol is the algorithm that actually ran.
	Protocol Protocol
}

// ReconcileSetsOfSets runs the paper's primary contribution: Bob (second
// argument) recovers Alice's parent set of child sets. Child sets may be
// passed unsorted; each must be duplicate-free within the parent.
func ReconcileSetsOfSets(alice, bob [][]uint64, cfg Config) (*Result, error) {
	p := core.Params{S: cfg.MaxChildSets, H: cfg.MaxChildSize, U: cfg.Universe}
	if p.S <= 0 {
		p.S = maxLen(len(alice), len(bob))
	}
	if p.H <= 0 {
		p.H = maxChildLen(alice, bob)
	}
	if cfg.Validate {
		if err := core.Validate(alice, p); err != nil {
			return nil, err
		}
		if err := core.Validate(bob, p); err != nil {
			return nil, err
		}
	}
	coins := hashing.NewCoins(cfg.Seed)
	proto := cfg.Protocol
	if proto == ProtocolAuto {
		if cfg.KnownDiff > 0 {
			proto = ProtocolCascade
		} else {
			proto = ProtocolMultiRound
		}
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 3
	}
	d := cfg.KnownDiff
	dHat := cfg.KnownChildDiff
	if dHat <= 0 {
		dHat = core.DHat(maxInt(d, 1), p.S)
	}

	sess := transport.New()
	var res *core.Result
	var err error
	switch proto {
	case ProtocolNaive:
		if d > 0 {
			res, err = core.Replicated(sess, coins, replicas, func(sess transport.Channel, c hashing.Coins) (*core.Result, error) {
				return core.NaiveKnownD(sess, c, alice, bob, p, dHat)
			})
		} else {
			res, err = core.NaiveUnknownD(sess, coins, alice, bob, p)
		}
	case ProtocolNested:
		if d > 0 {
			res, err = core.Replicated(sess, coins, replicas, func(sess transport.Channel, c hashing.Coins) (*core.Result, error) {
				return core.NestedKnownD(sess, c, alice, bob, p, d, dHat)
			})
		} else {
			res, err = core.NestedUnknownD(sess, coins, alice, bob, p)
		}
	case ProtocolCascade:
		if d > 0 {
			res, err = core.Replicated(sess, coins, replicas, func(sess transport.Channel, c hashing.Coins) (*core.Result, error) {
				return core.CascadeKnownD(sess, c, alice, bob, p, d)
			})
		} else {
			res, err = core.CascadeUnknownD(sess, coins, alice, bob, p)
		}
	case ProtocolMultiRound:
		if d > 0 {
			res, err = core.Replicated(sess, coins, replicas, func(sess transport.Channel, c hashing.Coins) (*core.Result, error) {
				return core.MultiRoundKnownD(sess, c, alice, bob, p, d)
			})
		} else {
			res, err = core.MultiRoundUnknownD(sess, coins, alice, bob, p)
		}
	default:
		return nil, fmt.Errorf("sosr: unknown protocol %v", proto)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Recovered: res.Recovered,
		Added:     res.Added,
		Removed:   res.Removed,
		Stats:     statsFrom(res.Stats),
		Attempts:  res.Attempts,
		Protocol:  proto,
	}, nil
}

// SetsOfSetsDistance computes the paper's ground-truth d between two parent
// sets: the minimum-cost child matching under symmetric-difference costs
// (§3.1). Local computation, O(s³) — for sizing, testing and experiments.
func SetsOfSetsDistance(a, b [][]uint64) int { return core.Distance(a, b) }

func maxLen(a, b int) int {
	if a > b {
		return a
	}
	if b < 1 {
		return 1
	}
	return b
}

func maxChildLen(ps ...[][]uint64) int {
	m := 1
	for _, p := range ps {
		for _, cs := range p {
			if len(cs) > m {
				m = len(cs)
			}
		}
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
