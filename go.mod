module sosr

go 1.24
